// Package net implements the FlexOS network stack: a from-scratch
// Ethernet/IPv4/TCP stack in the style of Unikraft's lwip micro-
// library, written against the rt.Env porting surface so that the same
// code runs under any compartmentalization.
//
// The stack does real work on real bytes — binary header encoding,
// ones-complement checksums, sequence-number arithmetic, flow control,
// retransmission — and charges the virtual clock as it goes. Bulk
// payload copies are delegated to the LibC library through a call
// gate, which is the architectural detail behind two of the paper's
// findings: hardening LibC is expensive while hardening the network
// stack is cheap (Table 1), and co-locating the network stack with the
// scheduler does not remove crossings because semaphores live in LibC
// (Fig. 5).
package net

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes and constants.
const (
	EtherHdrLen = 14
	IPHdrLen    = 20
	TCPHdrLen   = 20
	HdrLen      = EtherHdrLen + IPHdrLen + TCPHdrLen
	// MSS is the TCP maximum segment size on our virtual link
	// (1500 MTU minus IP and TCP headers).
	MSS = 1460
	// UDPHdrLen is the UDP header size.
	UDPHdrLen = 8
	// UDPHdrTotal is Ethernet+IP+UDP.
	UDPHdrTotal = EtherHdrLen + IPHdrLen + UDPHdrLen
	// etherTypeIPv4 tags IPv4 frames.
	etherTypeIPv4 = 0x0800
	// protoTCP and protoUDP are IPv4 protocol numbers.
	protoTCP = 6
	protoUDP = 17
)

// TCP flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)

// Errors shared by the stack.
var (
	ErrMalformed    = errors.New("net: malformed packet")
	ErrBadChecksum  = errors.New("net: bad checksum")
	ErrConnReset    = errors.New("net: connection reset")
	ErrConnClosed   = errors.New("net: connection closed")
	ErrNotListening = errors.New("net: port not listening")
	ErrInUse        = errors.New("net: port in use")
	ErrNoPorts      = errors.New("net: ephemeral port space exhausted")
	ErrTimeout      = errors.New("net: connection timed out")
)

// IPAddr is an IPv4 address.
type IPAddr uint32

// String renders dotted quad.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IP4 builds an address from octets.
func IP4(a, b, c, d byte) IPAddr {
	return IPAddr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// header is the parsed representation of one TCP or UDP IPv4 frame.
type header struct {
	Proto            uint8 // protoTCP or protoUDP
	SrcIP, DstIP     IPAddr
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Wnd              uint16
	PayloadLen       int
}

func (h *header) has(flag uint8) bool { return h.Flags&flag != 0 }

// encodeFrame writes a full Ethernet+IPv4+TCP frame into buf, which
// must be at least HdrLen+len(payload) long, and returns the frame
// length. Checksums over the IP header and the TCP segment are
// computed for real.
func encodeFrame(buf []byte, h *header, payload []byte) (int, error) {
	total := HdrLen + len(payload)
	if len(buf) < total {
		return 0, fmt.Errorf("%w: frame buffer too small (%d < %d)", ErrMalformed, len(buf), total)
	}
	// Ethernet: synthetic MACs derived from IPs.
	copy(buf[0:6], macFor(h.DstIP))
	copy(buf[6:12], macFor(h.SrcIP))
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// IPv4.
	ip := buf[EtherHdrLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPHdrLen+TCPHdrLen+len(payload)))
	binary.BigEndian.PutUint16(ip[4:6], 0) // id
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64 // TTL
	ip[9] = protoTCP
	binary.BigEndian.PutUint16(ip[10:12], 0) // checksum placeholder
	binary.BigEndian.PutUint32(ip[12:16], uint32(h.SrcIP))
	binary.BigEndian.PutUint32(ip[16:20], uint32(h.DstIP))
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPHdrLen]))

	// TCP.
	tcp := ip[IPHdrLen:]
	binary.BigEndian.PutUint16(tcp[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], h.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], h.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], h.Ack)
	tcp[12] = 5 << 4 // data offset
	tcp[13] = h.Flags
	binary.BigEndian.PutUint16(tcp[14:16], h.Wnd)
	binary.BigEndian.PutUint16(tcp[16:18], 0) // checksum placeholder
	binary.BigEndian.PutUint16(tcp[18:20], 0) // urgent
	copy(tcp[TCPHdrLen:], payload)
	binary.BigEndian.PutUint16(tcp[16:18],
		transportChecksum(h.SrcIP, h.DstIP, protoTCP, tcp[:TCPHdrLen+len(payload)]))
	return total, nil
}

// decodeFrame parses and verifies a TCP or UDP frame, returning the
// header and the payload bytes (aliasing frame).
func decodeFrame(frame []byte) (*header, []byte, error) {
	if len(frame) < EtherHdrLen+IPHdrLen+UDPHdrLen {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrMalformed, len(frame))
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return nil, nil, fmt.Errorf("%w: not IPv4", ErrMalformed)
	}
	ip := frame[EtherHdrLen:]
	if ip[0] != 0x45 || (ip[9] != protoTCP && ip[9] != protoUDP) {
		return nil, nil, fmt.Errorf("%w: unsupported IP header", ErrMalformed)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if EtherHdrLen+totalLen > len(frame) {
		return nil, nil, fmt.Errorf("%w: bad IP length %d", ErrMalformed, totalLen)
	}
	if checksum(ip[:IPHdrLen]) != 0 {
		return nil, nil, fmt.Errorf("%w: IP header", ErrBadChecksum)
	}
	h := &header{
		Proto: ip[9],
		SrcIP: IPAddr(binary.BigEndian.Uint32(ip[12:16])),
		DstIP: IPAddr(binary.BigEndian.Uint32(ip[16:20])),
	}
	switch h.Proto {
	case protoTCP:
		if totalLen < IPHdrLen+TCPHdrLen {
			return nil, nil, fmt.Errorf("%w: bad IP length %d", ErrMalformed, totalLen)
		}
		tcp := ip[IPHdrLen:totalLen]
		if transportChecksum(h.SrcIP, h.DstIP, protoTCP, tcp) != 0 {
			return nil, nil, fmt.Errorf("%w: TCP segment", ErrBadChecksum)
		}
		h.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
		h.DstPort = binary.BigEndian.Uint16(tcp[2:4])
		h.Seq = binary.BigEndian.Uint32(tcp[4:8])
		h.Ack = binary.BigEndian.Uint32(tcp[8:12])
		h.Flags = tcp[13]
		h.Wnd = binary.BigEndian.Uint16(tcp[14:16])
		h.PayloadLen = len(tcp) - TCPHdrLen
		return h, tcp[TCPHdrLen:], nil
	case protoUDP:
		if totalLen < IPHdrLen+UDPHdrLen {
			return nil, nil, fmt.Errorf("%w: bad IP length %d", ErrMalformed, totalLen)
		}
		udp := ip[IPHdrLen:totalLen]
		udpLen := int(binary.BigEndian.Uint16(udp[4:6]))
		if udpLen != len(udp) {
			return nil, nil, fmt.Errorf("%w: UDP length %d != %d", ErrMalformed, udpLen, len(udp))
		}
		if transportChecksum(h.SrcIP, h.DstIP, protoUDP, udp) != 0 {
			return nil, nil, fmt.Errorf("%w: UDP datagram", ErrBadChecksum)
		}
		h.SrcPort = binary.BigEndian.Uint16(udp[0:2])
		h.DstPort = binary.BigEndian.Uint16(udp[2:4])
		h.PayloadLen = len(udp) - UDPHdrLen
		return h, udp[UDPHdrLen:], nil
	}
	return nil, nil, fmt.Errorf("%w: protocol %d", ErrMalformed, h.Proto)
}

// encodeUDPFrame writes a full Ethernet+IPv4+UDP frame into buf.
func encodeUDPFrame(buf []byte, h *header, payload []byte) (int, error) {
	total := UDPHdrTotal + len(payload)
	if len(buf) < total {
		return 0, fmt.Errorf("%w: frame buffer too small (%d < %d)", ErrMalformed, len(buf), total)
	}
	copy(buf[0:6], macFor(h.DstIP))
	copy(buf[6:12], macFor(h.SrcIP))
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	ip := buf[EtherHdrLen:]
	ip[0] = 0x45
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPHdrLen+UDPHdrLen+len(payload)))
	binary.BigEndian.PutUint16(ip[4:6], 0)
	binary.BigEndian.PutUint16(ip[6:8], 0x4000)
	ip[8] = 64
	ip[9] = protoUDP
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint32(ip[12:16], uint32(h.SrcIP))
	binary.BigEndian.PutUint32(ip[16:20], uint32(h.DstIP))
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPHdrLen]))

	udp := ip[IPHdrLen:]
	binary.BigEndian.PutUint16(udp[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(udp[2:4], h.DstPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHdrLen+len(payload)))
	binary.BigEndian.PutUint16(udp[6:8], 0)
	copy(udp[UDPHdrLen:], payload)
	binary.BigEndian.PutUint16(udp[6:8],
		transportChecksum(h.SrcIP, h.DstIP, protoUDP, udp[:UDPHdrLen+len(payload)]))
	return total, nil
}

// checksum is the RFC 1071 ones-complement sum.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// transportChecksum covers a TCP segment or UDP datagram with the
// IPv4 pseudo-header.
func transportChecksum(src, dst IPAddr, proto uint8, seg []byte) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(dst))
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	var sum uint32
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(seg)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// macFor derives a stable synthetic MAC from an IP.
func macFor(ip IPAddr) []byte {
	return []byte{0x02, 0x00, byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// seqLess reports a < b in sequence space (RFC 1982 style).
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEq reports a <= b in sequence space.
func seqLEq(a, b uint32) bool { return int32(a-b) <= 0 }
