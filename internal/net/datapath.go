package net

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
)

// DataPath selects how payloads move between compartments on the hot
// path — the copy-vs-share axis both compartmentalization SoKs single
// out as the dominant performance trade-off.
type DataPath int

const (
	// DataPathShared (the default) moves payloads as ref-counted
	// BufRef descriptors in the key-0 shared window: one copy at the
	// NIC edge (DMA into the rx buffer), one at the app edge (drain
	// into the application's buffer), and only descriptor words at
	// each gate in between. Backends whose TransferPolicy is copy
	// (MPK-switched, VM RPC) cannot share by reference and quietly
	// keep their copy semantics.
	DataPathShared DataPath = iota
	// DataPathCopy models copy semantics at every compartment
	// boundary: each payload hop between compartments additionally
	// pays CrossCopyCycles, attributed to clock.CompCopy.
	DataPathCopy
)

// String implements fmt.Stringer.
func (d DataPath) String() string {
	switch d {
	case DataPathShared:
		return "shared"
	case DataPathCopy:
		return "copy"
	default:
		return fmt.Sprintf("DataPath(%d)", int(d))
	}
}

// ParseDataPath converts a config string to a DataPath.
func ParseDataPath(s string) (DataPath, error) {
	switch s {
	case "shared", "share", "zero-copy":
		return DataPathShared, nil
	case "copy":
		return DataPathCopy, nil
	default:
		return 0, fmt.Errorf("net: unknown datapath %q", s)
	}
}

// rxOwn identifies one driver rx (or tx mbuf) buffer and how it was
// allocated, so it can be released symmetrically: pooled buffers came
// from the machine's shared pool via PoolGetOwned, legacy buffers from
// the netstack compartment's private allocator.
type rxOwn struct {
	base   mem.Addr
	ref    mem.BufRef
	pooled bool
}

// allocRx allocates an rx/tx buffer of n bytes on whichever path the
// stack's data path selects. Charging is identical on both paths by
// construction (PoolGetOwned mirrors Malloc).
func (st *Stack) allocRx(n int) (rxOwn, error) {
	if st.sharedRx() {
		ref, err := st.env.PoolGetOwned(n)
		if err != nil {
			return rxOwn{}, err
		}
		return rxOwn{base: ref.Addr, ref: ref, pooled: true}, nil
	}
	base, err := st.env.Malloc(n)
	if err != nil {
		return rxOwn{}, err
	}
	return rxOwn{base: base}, nil
}

// releaseRx releases an allocRx buffer (PoolReleaseOwned mirrors Free).
func (st *Stack) releaseRx(o rxOwn) error {
	if o.pooled {
		return st.env.PoolReleaseOwned(o.ref)
	}
	return st.env.Free(o.base)
}

// sharedRx reports whether the stack runs the descriptor-passing data
// path: shared DataPath, a pool to allocate from, and a crossing to
// libc that shares buffers by reference. On copy-policy backends
// (MPK-switched, VM RPC) this is false and the stack stays on the
// legacy private-buffer path — the knob degrades, it does not charge
// payload words at every gate.
func (st *Stack) sharedRx() bool {
	return st.dataPath == DataPathShared && st.env.Pool != nil && st.env.SharesBufs("libc")
}

// SetCopyTracer installs fn to observe cross-compartment payload
// copies (trace kind "buf-copy"); nil disables.
func (st *Stack) SetCopyTracer(fn func(from, to string, n int)) { st.copyTracer = fn }

// crossCopy charges the boundary-copy cost of moving n payload bytes
// from library `from` to library `to` under copy semantics. It is a
// no-op on the shared data path and within a compartment — the charge
// exists exactly where a copy-semantics deployment would really copy.
func (st *Stack) crossCopy(from, to string, n int) {
	if st.dataPath != DataPathCopy || n <= 0 {
		return
	}
	if st.env.Gates.SameCompartment(from, to) {
		return
	}
	st.env.CPU.Charge(clock.CompCopy, clock.CrossCopyCycles(n))
	if st.copyTracer != nil {
		st.copyTracer(from, to, n)
	}
}
