package net

import (
	"testing"

	"flexos/internal/sched"
)

// Fuzzing the established-connection input path: the LinkFaults model
// mangles frames in exactly four ways (corrupt, truncate via garbage,
// duplicate, reorder), so the fuzzer drives the same four mutations —
// plus anything the mutator invents — against a live connection. The
// invariants are the chaos tests' invariants: no panic, no corrupted
// byte delivered to the application, no rx buffer leaked.

// Fuzz op codes: each input byte b encodes op b%5 with parameter b/5.
const (
	fopData     = 0 // in-order data segment, advances the stream
	fopDup      = 1 // exact duplicate of the previous frame
	fopFuture   = 2 // segment from the future (reorder/gap)
	fopCorrupt  = 3 // valid in-order segment with one byte flipped
	fopTruncate = 4 // valid in-order segment cut short
)

// fuzzPattern is the peer's deterministic payload byte at absolute
// sequence number seq — delivered bytes are checked against it.
func fuzzPattern(seq uint32) byte { return byte(seq*7 + 13) }

func FuzzEstablishedSegments(f *testing.F) {
	f.Add([]byte{fopData, fopData, fopData, fopData})
	f.Add([]byte{fopCorrupt, 5*8 + fopCorrupt, fopData, fopCorrupt})
	f.Add([]byte{fopTruncate, 3*5 + fopTruncate, fopData, 48*5 + fopTruncate})
	f.Add([]byte{fopData, fopDup, fopDup, fopData, fopDup})
	f.Add([]byte{fopFuture, fopData, fopData, 2*5 + fopFuture, fopData, fopData, fopData})
	f.Add([]byte{fopData, fopFuture, fopDup, fopCorrupt, fopTruncate, fopData, fopFuture, fopData})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			return // bound the per-input work
		}
		s := sched.NewCScheduler()
		m := newMachine(t, s, IP4(10, 0, 0, 1), Config{})
		if _, err := m.stack.Listen(80, 4); err != nil {
			t.Fatal(err)
		}
		const (
			peerPort = 40000
			segLen   = 64
			peerISS  = 1000
		)
		peerIP := IP4(10, 0, 0, 2)
		mkFrame := func(seq uint32, ack uint32, flags uint8, n int) []byte {
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = fuzzPattern(seq + uint32(i))
			}
			frame := make([]byte, HdrLen+n)
			h := &header{
				SrcIP: peerIP, DstIP: m.stack.IP(),
				SrcPort: peerPort, DstPort: 80,
				Seq: seq, Ack: ack, Flags: flags, Wnd: 65535,
			}
			if _, err := encodeFrame(frame, h, payload); err != nil {
				t.Fatal(err)
			}
			return frame
		}
		// Handshake by hand: SYN in, then ACK the stack's SYN-ACK using
		// the white-box initial send sequence.
		m.stack.input(mkFrame(peerISS, 0, flagSYN, 0))
		sock := m.stack.conns[connKey{80, peerIP, peerPort}]
		if sock == nil {
			t.Fatal("SYN produced no connection")
		}
		m.stack.input(mkFrame(peerISS+1, sock.sndNxt, flagACK, 0))
		if sock.state != stEstablished {
			t.Fatalf("handshake left state %v", sock.state)
		}
		dst := m.buf(t, 4096, 0)
		baseline := m.heap.Stats().LiveBytes
		streamStart := sock.rcvNxt
		ackNo := sock.sndNxt
		seq := streamStart
		var last []byte
		for _, b := range ops {
			param := uint32(b / 5)
			switch b % 5 {
			case fopData:
				last = mkFrame(seq, ackNo, flagACK, segLen)
				seq += segLen
				m.stack.input(last)
			case fopDup:
				if last == nil {
					continue
				}
				m.stack.input(append([]byte(nil), last...))
			case fopFuture:
				// A frame 1..8 segments ahead of the in-order point; the
				// stream pointer stays put, so the gap may never fill.
				gap := (param%8 + 1) * segLen
				last = mkFrame(seq+gap, ackNo, flagACK, segLen)
				m.stack.input(last)
			case fopCorrupt:
				frame := mkFrame(seq, ackNo, flagACK, segLen)
				frame[int(param)%len(frame)] ^= 0x40
				last = frame
				m.stack.input(frame)
			case fopTruncate:
				frame := mkFrame(seq, ackNo, flagACK, segLen)
				last = frame[:int(param)%len(frame)]
				m.stack.input(last)
			}
		}
		// Everything the stack accepted must be the peer's bytes: drain
		// the socket and check each delivered byte against the pattern
		// at its stream offset.
		delivered := uint32(0)
		for {
			n, err := sock.TryRecv(nil, dst, 4096)
			if err != nil || n == 0 {
				break
			}
			got, err := m.arena.Bytes(dst, n)
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range got {
				if want := fuzzPattern(streamStart + delivered + uint32(i)); g != want {
					t.Fatalf("corrupted byte delivered at stream offset %d: got %#x want %#x",
						delivered+uint32(i), g, want)
				}
			}
			delivered += uint32(n)
		}
		// A reset tears down the reassembly queue's buffers; after it,
		// every rx buffer the mutated frames ever pinned must be back.
		m.stack.input(mkFrame(seq, ackNo, flagRST|flagACK, 0))
		if live := m.heap.Stats().LiveBytes; live != baseline {
			t.Fatalf("mutated segments leaked %d rx bytes", int64(live)-int64(baseline))
		}
	})
}
