package net

import (
	"bytes"
	"io"
	"testing"

	"flexos/internal/sched"
)

// tcpipWorld builds a client/server pair in TCPIPThreadMode with the
// tcpip daemons started.
func tcpipWorld(t *testing.T) (*sched.CScheduler, *machine, *machine) {
	t.Helper()
	s, server, client, _ := world(t, Config{SocketMode: TCPIPThreadMode})
	server.stack.StartTCPIP(s)
	client.stack.StartTCPIP(s)
	return s, server, client
}

func TestTCPIPThreadModeTransfers(t *testing.T) {
	s, server, client := tcpipWorld(t)
	const port, total = 5001, 20_000
	l, err := server.stack.Listen(port, 4)
	if err != nil {
		t.Fatal(err)
	}
	var received []byte
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 4096, 0)
		for {
			n, err := conn.Recv(th, buf, 4096)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := server.arena.Bytes(buf, n)
			received = append(received, b...)
		}
	})
	var want []byte
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, total, 5)
		b, _ := client.arena.Bytes(out, total)
		want = append([]byte(nil), b...)
		if n, err := conn.Send(th, out, total); err != nil || n != total {
			t.Errorf("Send = %d, %v", n, err)
		}
		if err := conn.Close(th); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(received, want) {
		t.Fatalf("got %d bytes, want %d", len(received), total)
	}
	// Connect, Send(s) and Close must have gone through the client's
	// tcpip thread.
	if got := client.stack.TCPIPServed(); got < 3 {
		t.Fatalf("client tcpip served %d messages, want >= 3", got)
	}
}

func TestTCPIPThreadCostsMoreSwitches(t *testing.T) {
	run := func(mode SocketMode) uint64 {
		s, server, client, _ := world(t, Config{SocketMode: mode})
		if mode == TCPIPThreadMode {
			server.stack.StartTCPIP(s)
			client.stack.StartTCPIP(s)
		}
		const port, total = 5001, 30_000
		l, _ := server.stack.Listen(port, 4)
		s.Spawn("server", server.cpu, func(th *sched.Thread) {
			conn, err := l.Accept(th)
			if err != nil {
				t.Error(err)
				return
			}
			buf := server.buf(t, 2048, 0)
			for {
				if _, err := conn.Recv(th, buf, 2048); err != nil {
					return
				}
			}
		})
		s.Spawn("client", client.cpu, func(th *sched.Thread) {
			conn, err := client.stack.Connect(th, server.stack.IP(), port)
			if err != nil {
				t.Error(err)
				return
			}
			out := client.buf(t, 4096, 1)
			for sent := 0; sent < total; sent += 4096 {
				if _, err := conn.Send(th, out, 4096); err != nil {
					t.Error(err)
					return
				}
			}
			_ = conn.Close(th)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.ContextSwitches()
	}
	direct := run(DirectMode)
	netconn := run(TCPIPThreadMode)
	if netconn <= direct {
		t.Fatalf("tcpip mode (%d switches) should exceed direct (%d)", netconn, direct)
	}
}

func TestDirectModeHasNoTCPIPThread(t *testing.T) {
	s, server, _, _ := world(t, Config{})
	server.stack.StartTCPIP(s) // no-op in direct mode
	if server.stack.TCPIPServed() != 0 {
		t.Fatal("direct mode served tcpip messages")
	}
}

func TestSocketModeString(t *testing.T) {
	if DirectMode.String() != "direct" || TCPIPThreadMode.String() != "tcpip-thread" {
		t.Fatal("mode strings wrong")
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	run := func(delayed bool) (uint64, int) {
		s, server, client, _ := world(t, Config{DelayedAck: delayed, RtxDelayTicks: 100000})
		const port, total = 5001, 60_000
		l, _ := server.stack.Listen(port, 4)
		received := 0
		s.Spawn("server", server.cpu, func(th *sched.Thread) {
			conn, err := l.Accept(th)
			if err != nil {
				t.Error(err)
				return
			}
			buf := server.buf(t, 8192, 0)
			for {
				n, err := conn.Recv(th, buf, 8192)
				if err != nil {
					return
				}
				received += n
			}
		})
		s.Spawn("client", client.cpu, func(th *sched.Thread) {
			conn, err := client.stack.Connect(th, server.stack.IP(), port)
			if err != nil {
				t.Error(err)
				return
			}
			out := client.buf(t, total, 7)
			if _, err := conn.Send(th, out, total); err != nil {
				t.Error(err)
			}
			_ = conn.Close(th)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return server.stack.Stats().SegsOut, received
	}
	acksImmediate, rx1 := run(false)
	acksDelayed, rx2 := run(true)
	if rx1 != 60_000 || rx2 != 60_000 {
		t.Fatalf("data incomplete: %d / %d", rx1, rx2)
	}
	// Delayed acks should roughly halve the server's outgoing segment
	// count on a receive-only workload.
	if float64(acksDelayed) > 0.7*float64(acksImmediate) {
		t.Fatalf("delayed acks did not reduce traffic: %d vs %d", acksDelayed, acksImmediate)
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	// A single segment (odd count) must still be acknowledged — by the
	// delayed-ack timer — so the sender's rtx queue drains.
	s, server, client, _ := world(t, Config{DelayedAck: true})
	const port = 5001
	l, _ := server.stack.Listen(port, 4)
	s.Spawn("server", server.cpu, func(th *sched.Thread) {
		conn, err := l.Accept(th)
		if err != nil {
			t.Error(err)
			return
		}
		buf := server.buf(t, 1024, 0)
		if _, err := conn.Recv(th, buf, 1024); err != nil {
			t.Error(err)
		}
	})
	s.Spawn("client", client.cpu, func(th *sched.Thread) {
		conn, err := client.stack.Connect(th, server.stack.IP(), port)
		if err != nil {
			t.Error(err)
			return
		}
		out := client.buf(t, 100, 3)
		if _, err := conn.Send(th, out, 100); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if client.stack.Stats().Retransmits != 0 {
		t.Fatalf("unacked data retransmitted %d times despite delack timer",
			client.stack.Stats().Retransmits)
	}
}
