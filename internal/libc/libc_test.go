package libc

import (
	"errors"
	"testing"

	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/rt"
	"flexos/internal/sched"
	"flexos/internal/sh"
)

type fixture struct {
	cpu   *clock.CPU
	arena *mem.Arena
	heap  *mem.Heap
	reg   *gate.Registry
	libc  *LibC
	asan  *sh.ASAN
}

// newFixture builds a LibC over a single- or split-compartment image.
// split=true puts libc and sched into different compartments so gate
// crossings are observable.
func newFixture(t *testing.T, split bool, profile sh.Profile) *fixture {
	t.Helper()
	cpu := clock.New()
	arena := mem.NewArena(4 << 20)
	heap, err := mem.NewHeap(arena, mem.PageSize, 3<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := gate.NewRegistry(gate.NewFuncCall(cpu), gate.NewFuncCall(cpu))
	reg.AddCompartment(gate.NewDomain("comp0"))
	reg.AddCompartment(gate.NewDomain("comp1"))
	libs := map[string]string{"libc": "comp0", "alloc": "comp0", "app": "comp0", "netstack": "comp0", "sched": "comp0"}
	if split {
		libs["sched"] = "comp1"
	}
	for lib, comp := range libs {
		if err := reg.Assign(lib, comp); err != nil {
			t.Fatal(err)
		}
	}
	asan := sh.NewASAN(arena, cpu)
	var alloc mem.Allocator = heap
	if profile.ASAN {
		alloc = sh.NewAllocator(heap, asan, cpu)
	}
	env := &rt.Env{
		Lib: "libc", Comp: clock.CompLibC, CPU: cpu,
		Gates: reg, Arena: arena, Alloc: alloc,
		Hard: sh.NewHardener(clock.CompLibC, profile, asan, nil, cpu),
	}
	return &fixture{cpu: cpu, arena: arena, heap: heap, reg: reg, libc: New(env), asan: asan}
}

func TestMemcpyMovesBytesAndCharges(t *testing.T) {
	f := newFixture(t, false, sh.None)
	src, err := f.libc.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := f.libc.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := f.arena.Bytes(src, 256)
	for i := range sb {
		sb[i] = byte(i)
	}
	before := f.cpu.Component(clock.CompLibC)
	if err := f.libc.Memcpy(dst, src, 256); err != nil {
		t.Fatal(err)
	}
	db, _ := f.arena.Bytes(dst, 256)
	for i := range db {
		if db[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, db[i])
		}
	}
	if got := f.cpu.Component(clock.CompLibC) - before; got != clock.CopyCycles(256) {
		t.Fatalf("charge = %d, want %d", got, clock.CopyCycles(256))
	}
	// Degenerate sizes.
	if err := f.libc.Memcpy(dst, src, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.libc.Memcpy(dst, src, -1); err == nil {
		t.Fatal("negative memcpy accepted")
	}
}

func TestMemcpyASANCatchesOverflow(t *testing.T) {
	f := newFixture(t, false, sh.Profile{ASAN: true})
	src, err := f.libc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := f.libc.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	// Copy 64 bytes into a 32-byte buffer: the classic overflow, caught
	// by LibC's hardening profile.
	err = f.libc.Memcpy(dst, src, 64)
	var v *sh.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want ASAN violation", err)
	}
	if v.Kind != "heap-buffer-overflow" {
		t.Fatalf("kind = %s", v.Kind)
	}
}

func TestMemsetAndMemcmp(t *testing.T) {
	f := newFixture(t, false, sh.None)
	a, _ := f.libc.Malloc(128)
	b, _ := f.libc.Malloc(128)
	if err := f.libc.Memset(a, 0xAB, 128); err != nil {
		t.Fatal(err)
	}
	if err := f.libc.Memset(b, 0xAB, 128); err != nil {
		t.Fatal(err)
	}
	if c, err := f.libc.Memcmp(a, b, 128); err != nil || c != 0 {
		t.Fatalf("Memcmp equal = %d, %v", c, err)
	}
	bb, _ := f.arena.Bytes(b, 128)
	bb[100] = 0xFF
	if c, _ := f.libc.Memcmp(a, b, 128); c != -1 {
		t.Fatalf("Memcmp = %d, want -1", c)
	}
	if c, _ := f.libc.Memcmp(b, a, 128); c != 1 {
		t.Fatalf("Memcmp = %d, want 1", c)
	}
	if c, err := f.libc.Memcmp(a, b, 0); err != nil || c != 0 {
		t.Fatal("zero-length memcmp")
	}
}

func TestStrlen(t *testing.T) {
	f := newFixture(t, false, sh.None)
	s, _ := f.libc.Malloc(32)
	b, _ := f.arena.Bytes(s, 32)
	copy(b, "flexos\x00garbage")
	n, err := f.libc.Strlen(s, 32)
	if err != nil || n != 6 {
		t.Fatalf("Strlen = %d, %v", n, err)
	}
	// Unterminated within limit.
	for i := range b {
		b[i] = 'x'
	}
	if _, err := f.libc.Strlen(s, 16); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestCallocZeroes(t *testing.T) {
	f := newFixture(t, false, sh.None)
	p, err := f.libc.Calloc(512)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := f.arena.Bytes(p, 512)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %d", i, v)
		}
	}
	if err := f.libc.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestMallocChargesAllocComponent(t *testing.T) {
	f := newFixture(t, false, sh.None)
	if _, err := f.libc.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if f.cpu.Component(clock.CompAlloc) < clock.CostMalloc {
		t.Fatal("allocator cost not charged to alloc component")
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	f := newFixture(t, false, sh.None)
	s := sched.NewCScheduler()
	sem := f.libc.NewSemaphore(0)
	var order []string
	s.Spawn("consumer", f.cpu, func(th *sched.Thread) {
		sem.Down(th)
		order = append(order, "consumed")
	})
	s.Spawn("producer", f.cpu, func(th *sched.Thread) {
		order = append(order, "produced")
		sem.Up()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produced" || order[1] != "consumed" {
		t.Fatalf("order = %v", order)
	}
	if sem.Count() != 0 {
		t.Fatalf("count = %d", sem.Count())
	}
}

func TestSemaphoreTryDown(t *testing.T) {
	f := newFixture(t, false, sh.None)
	sem := f.libc.NewSemaphore(1)
	if !sem.TryDown() {
		t.Fatal("TryDown on count 1 failed")
	}
	if sem.TryDown() {
		t.Fatal("TryDown on count 0 succeeded")
	}
}

func TestSemaphoreCrossesIntoSchedulerCompartment(t *testing.T) {
	// The Fig. 5 mechanism: when libc and the scheduler live in
	// different compartments, a contended semaphore Down/Up crosses
	// the boundary.
	f := newFixture(t, true, sh.None)
	s := sched.NewCScheduler()
	sem := f.libc.NewSemaphore(0)
	s.Spawn("sleeper", f.cpu, func(th *sched.Thread) { sem.Down(th) })
	s.Spawn("waker", f.cpu, func(th *sched.Thread) { sem.Up() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := f.reg.Crossings("comp0", "comp1"); got < 2 {
		t.Fatalf("libc->sched crossings = %d, want >= 2 (park + wake)", got)
	}
}

func TestUncontendedSemaphoreStaysLocal(t *testing.T) {
	// Fast path: Down with a positive count and Up with no waiter must
	// not cross into the scheduler.
	f := newFixture(t, true, sh.None)
	s := sched.NewCScheduler()
	sem := f.libc.NewSemaphore(1)
	s.Spawn("solo", f.cpu, func(th *sched.Thread) {
		sem.Down(th)
		sem.Up()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := f.reg.Crossings("comp0", "comp1"); got != 0 {
		t.Fatalf("uncontended semaphore crossed %d times", got)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	f := newFixture(t, false, sh.None)
	s := sched.NewCScheduler()
	mu := f.libc.NewMutex()
	inside := 0
	maxInside := 0
	body := func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			mu.Lock(th)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Yield() // try to provoke interleaving inside the section
			inside--
			mu.Unlock()
		}
	}
	s.Spawn("a", f.cpu, body)
	s.Spawn("b", f.cpu, body)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max threads in critical section = %d", maxInside)
	}
}

func TestSemOpCharges(t *testing.T) {
	f := newFixture(t, false, sh.None)
	sem := f.libc.NewSemaphore(1)
	before := f.cpu.Component(clock.CompLibC)
	sem.TryDown()
	if got := f.cpu.Component(clock.CompLibC) - before; got != clock.CostSemOp {
		t.Fatalf("TryDown charge = %d, want %d", got, clock.CostSemOp)
	}
}
