// Package libc is FlexOS's standard C library micro-library.
//
// It provides the bulk memory and string operations (memcpy and
// friends — the instrumentation hot spot when LibC is hardened, see
// Table 1 of the paper), the semaphores and mutexes used by the rest
// of the system (the paper's Fig. 5 hinges on semaphores being LibC
// objects: blocking socket operations cross netstack -> LibC ->
// scheduler regardless of whether netstack and scheduler share a
// compartment), and the POSIX-ish socket shims applications call.
package libc

import (
	"fmt"

	"flexos/internal/clock"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// LibC is one machine's C library instance.
type LibC struct {
	env *rt.Env
}

// New creates the library over its runtime environment (library name
// "libc").
func New(env *rt.Env) *LibC { return &LibC{env: env} }

// Env exposes the library's environment.
func (l *LibC) Env() *rt.Env { return l.env }

// --- bulk memory operations -----------------------------------------

// Memcpy copies n bytes between arena buffers. The per-byte work and
// the hardening checks are charged to LibC: this is the code Table 1
// shows paying 2.3x under SH.
func (l *LibC) Memcpy(dst, src mem.Addr, n int) error {
	if n < 0 {
		return fmt.Errorf("libc: memcpy of %d bytes", n)
	}
	if n == 0 {
		return nil
	}
	l.env.Charge(clock.CopyCycles(n))
	l.env.Hard.OnFrame()
	l.env.Hard.OnBulk(n)
	if err := l.env.Hard.OnAccess(src, n, false); err != nil {
		return err
	}
	if err := l.env.Hard.OnAccess(dst, n, true); err != nil {
		return err
	}
	s, err := l.env.Bytes(src, n)
	if err != nil {
		return err
	}
	d, err := l.env.Bytes(dst, n)
	if err != nil {
		return err
	}
	copy(d, s)
	return nil
}

// Memset fills n bytes at dst with c.
func (l *LibC) Memset(dst mem.Addr, c byte, n int) error {
	if n <= 0 {
		return nil
	}
	l.env.Charge(clock.CopyCycles(n))
	l.env.Hard.OnFrame()
	l.env.Hard.OnBulk(n)
	if err := l.env.Hard.OnAccess(dst, n, true); err != nil {
		return err
	}
	d, err := l.env.Bytes(dst, n)
	if err != nil {
		return err
	}
	for i := range d {
		d[i] = c
	}
	return nil
}

// Memcmp compares n bytes, returning -1, 0 or 1.
func (l *LibC) Memcmp(a, b mem.Addr, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	l.env.Charge(clock.CopyCycles(n))
	l.env.Hard.OnFrame()
	l.env.Hard.OnBulk(n)
	if err := l.env.Hard.OnAccess(a, n, false); err != nil {
		return 0, err
	}
	if err := l.env.Hard.OnAccess(b, n, false); err != nil {
		return 0, err
	}
	ab, err := l.env.Bytes(a, n)
	if err != nil {
		return 0, err
	}
	bb, err := l.env.Bytes(b, n)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if ab[i] < bb[i] {
			return -1, nil
		}
		if ab[i] > bb[i] {
			return 1, nil
		}
	}
	return 0, nil
}

// Strlen reports the length of the NUL-terminated string at addr,
// scanning at most limit bytes.
func (l *LibC) Strlen(addr mem.Addr, limit int) (int, error) {
	l.env.Hard.OnFrame()
	for i := 0; i < limit; i++ {
		if err := l.env.Hard.OnAccess(addr+mem.Addr(i), 1, false); err != nil {
			return 0, err
		}
		b, err := l.env.Bytes(addr+mem.Addr(i), 1)
		if err != nil {
			return 0, err
		}
		l.env.Charge(1)
		if b[0] == 0 {
			return i, nil
		}
	}
	return limit, fmt.Errorf("libc: unterminated string at %#x", addr)
}

// --- allocation ------------------------------------------------------

// Malloc allocates from the compartment's allocator through the alloc
// gate.
func (l *LibC) Malloc(n int) (mem.Addr, error) {
	l.env.Hard.OnFrame()
	return l.env.Malloc(n)
}

// Free releases a Malloc'd buffer.
func (l *LibC) Free(addr mem.Addr) error {
	l.env.Hard.OnFrame()
	return l.env.Free(addr)
}

// MallocShared allocates from the shared window: buffers handed
// across micro-library boundaries (socket I/O buffers and the like)
// are annotated as shared during porting and placed here, so every
// compartment can reach them.
func (l *LibC) MallocShared(n int) (mem.Addr, error) {
	l.env.Hard.OnFrame()
	return l.env.MallocShared(n)
}

// FreeShared releases a shared-window buffer.
func (l *LibC) FreeShared(addr mem.Addr) error {
	l.env.Hard.OnFrame()
	return l.env.FreeShared(addr)
}

// BufAlloc allocates a ref-counted I/O buffer from the shared pool —
// the application entry point of the zero-copy data path. Images built
// without a pool fall back to a plain shared-window allocation wrapped
// in a descriptor, so apps can use one code path everywhere.
func (l *LibC) BufAlloc(n int) (mem.BufRef, error) {
	l.env.Hard.OnFrame()
	if l.env.Pool == nil {
		addr, err := l.env.MallocShared(n)
		if err != nil {
			return mem.BufRef{}, err
		}
		return mem.BufRef{Addr: addr, Len: n, Cap: n}, nil
	}
	return l.env.PoolGet(n)
}

// BufFree drops the application's reference on a BufAlloc buffer.
func (l *LibC) BufFree(b mem.BufRef) error {
	l.env.Hard.OnFrame()
	if l.env.Pool == nil {
		return l.env.FreeShared(b.Addr)
	}
	return l.env.PoolRelease(b)
}

// Calloc allocates zeroed memory.
func (l *LibC) Calloc(n int) (mem.Addr, error) {
	addr, err := l.Malloc(n)
	if err != nil {
		return mem.NilAddr, err
	}
	if err := l.Memset(addr, 0, n); err != nil {
		return mem.NilAddr, err
	}
	return addr, nil
}

// --- semaphores and mutexes ------------------------------------------

// Semaphore is a counting semaphore implemented in LibC. Blocking and
// waking go through the libc -> scheduler gate: a crossing on every
// contended operation, whichever compartment the caller lives in.
type Semaphore struct {
	l     *LibC
	count int
	wq    sched.WaitQueue
}

// NewSem creates a semaphore with an initial count.
func (l *LibC) NewSem(n int) net.Sem { return &Semaphore{l: l, count: n} }

// NewSemaphore is the concretely-typed variant of NewSem.
func (l *LibC) NewSemaphore(n int) *Semaphore { return &Semaphore{l: l, count: n} }

// Down decrements the semaphore, parking t while the count is zero.
func (s *Semaphore) Down(t *sched.Thread) {
	s.l.env.Charge(clock.CostSemOp)
	s.l.env.Hard.OnFrame()
	for s.count == 0 {
		// Park through the scheduler's wait queue: a gate crossing
		// into the scheduler compartment.
		_ = s.l.env.CallFn("sched", "wait", 2, func() error {
			s.wq.Wait(t)
			return nil
		})
	}
	s.count--
}

// TryDown decrements without blocking; it reports success.
func (s *Semaphore) TryDown() bool {
	s.l.env.Charge(clock.CostSemOp)
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Up increments the semaphore and wakes one waiter if present.
func (s *Semaphore) Up() {
	s.l.env.Charge(clock.CostSemOp)
	s.l.env.Hard.OnFrame()
	s.count++
	if s.wq.Len() > 0 {
		_ = s.l.env.CallFn("sched", "wake", 1, func() error {
			s.wq.Signal()
			return nil
		})
	}
}

// HasWaiters reports whether a thread is parked on the semaphore; the
// wait-queue length is shared data readable without a crossing.
func (s *Semaphore) HasWaiters() bool { return s.wq.Len() > 0 }

// Count reports the current count (diagnostics).
func (s *Semaphore) Count() int { return s.count }

// Mutex is a binary semaphore.
type Mutex struct{ sem *Semaphore }

// NewMutex creates an unlocked mutex.
func (l *LibC) NewMutex() *Mutex { return &Mutex{sem: l.NewSemaphore(1)} }

// Lock acquires the mutex, blocking if held.
func (m *Mutex) Lock(t *sched.Thread) { m.sem.Down(t) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.sem.Up() }

var _ net.Support = (*LibC)(nil)
