package libc

import (
	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/sched"
)

// Socket shims: the POSIX-ish surface applications call. Each shim
// charges the syscall-entry cost in LibC and forwards into the network
// stack through the libc -> netstack gate, mirroring newlib-over-lwip
// in the Unikraft prototype.

// Listen binds a listening socket.
func (l *LibC) Listen(st *net.Stack, port uint16, backlog int) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "listen", 2, func() error {
		var err error
		s, err = st.Listen(port, backlog)
		return err
	})
	return s, err
}

// Accept blocks until a connection arrives.
func (l *LibC) Accept(t *sched.Thread, listener *net.Socket) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "accept", 1, func() error {
		var err error
		s, err = listener.Accept(t)
		return err
	})
	return s, err
}

// Connect opens a connection, blocking until established.
func (l *LibC) Connect(t *sched.Thread, st *net.Stack, ip net.IPAddr, port uint16) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "connect", 3, func() error {
		var err error
		s, err = st.Connect(t, ip, port)
		return err
	})
	return s, err
}

// Recv reads up to n bytes into the arena buffer at buf.
func (l *LibC) Recv(t *sched.Thread, s *net.Socket, buf mem.Addr, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var got int
	err := l.env.CallFn("netstack", "recv", 3, func() error {
		var err error
		got, err = s.Recv(t, buf, n)
		return err
	})
	return got, err
}

// RecvBuf is Recv with the destination named by a pool buffer
// descriptor. When the libc -> netstack crossing shares buffers by
// reference, the descriptor rides the gate frame and the stack fills
// the buffer in place; on copy-policy backends the shim degrades to
// the scalar ABI so the gate does not charge the payload words.
func (l *LibC) RecvBuf(t *sched.Thread, s *net.Socket, b mem.BufRef) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var got int
	do := func() error {
		var err error
		got, err = s.RecvRef(t, b)
		return err
	}
	var err error
	if l.env.SharesBufs("netstack") {
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1, Bufs: []mem.BufRef{b}}
		err = l.env.CallFrame("netstack", "recv", frame, do)
	} else {
		err = l.env.CallFn("netstack", "recv", 3, do)
	}
	return got, err
}

// Send writes n bytes from the arena buffer at buf.
func (l *LibC) Send(t *sched.Thread, s *net.Socket, buf mem.Addr, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var sent int
	err := l.env.CallFn("netstack", "send", 3, func() error {
		var err error
		sent, err = s.Send(t, buf, n)
		return err
	})
	return sent, err
}

// SendBuf is Send with the source named by a pool buffer descriptor;
// the stack pins it across the tcpip-thread handoff. Like RecvBuf it
// degrades to the scalar ABI on copy-policy backends.
func (l *LibC) SendBuf(t *sched.Thread, s *net.Socket, b mem.BufRef, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var sent int
	do := func() error {
		var err error
		sent, err = s.SendRef(t, b, n)
		return err
	}
	var err error
	if l.env.SharesBufs("netstack") {
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1, Bufs: []mem.BufRef{b}}
		err = l.env.CallFrame("netstack", "send", frame, do)
	} else {
		err = l.env.CallFn("netstack", "send", 3, do)
	}
	return sent, err
}

// Close shuts the connection down.
func (l *LibC) Close(t *sched.Thread, s *net.Socket) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "close", 1, func() error {
		return s.Close(t)
	})
}

// UDPBind binds a datagram socket.
func (l *LibC) UDPBind(st *net.Stack, port uint16) (*net.UDPSocket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var u *net.UDPSocket
	err := l.env.CallFn("netstack", "udp_bind", 1, func() error {
		var err error
		u, err = st.UDPBind(port)
		return err
	})
	return u, err
}

// SendTo transmits one datagram.
func (l *LibC) SendTo(t *sched.Thread, u *net.UDPSocket, ip net.IPAddr, port uint16, buf mem.Addr, n int) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "sendto", 4, func() error {
		return u.SendTo(t, ip, port, buf, n)
	})
}

// RecvFrom blocks for one datagram.
func (l *LibC) RecvFrom(t *sched.Thread, u *net.UDPSocket, buf mem.Addr, n int) (int, net.IPAddr, uint16, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var (
		got     int
		src     net.IPAddr
		srcPort uint16
	)
	err := l.env.CallFn("netstack", "recvfrom", 3, func() error {
		var err error
		got, src, srcPort, err = u.RecvFrom(t, buf, n)
		return err
	})
	return got, src, srcPort, err
}

// UDPClose unbinds a datagram socket.
func (l *LibC) UDPClose(u *net.UDPSocket) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "udp_close", 1, func() error {
		u.Close()
		return nil
	})
}
