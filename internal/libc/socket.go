package libc

import (
	"flexos/internal/clock"
	"flexos/internal/core/gate"
	"flexos/internal/mem"
	"flexos/internal/net"
	"flexos/internal/rt"
	"flexos/internal/sched"
)

// Socket shims: the POSIX-ish surface applications call. Each shim
// charges the syscall-entry cost in LibC and forwards into the network
// stack through the libc -> netstack gate, mirroring newlib-over-lwip
// in the Unikraft prototype.

// Listen binds a listening socket.
func (l *LibC) Listen(st *net.Stack, port uint16, backlog int) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "listen", 2, func() error {
		var err error
		s, err = st.Listen(port, backlog)
		return err
	})
	return s, err
}

// Accept blocks until a connection arrives.
func (l *LibC) Accept(t *sched.Thread, listener *net.Socket) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "accept", 1, func() error {
		var err error
		s, err = listener.Accept(t)
		return err
	})
	return s, err
}

// Connect opens a connection, blocking until established.
func (l *LibC) Connect(t *sched.Thread, st *net.Stack, ip net.IPAddr, port uint16) (*net.Socket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var s *net.Socket
	err := l.env.CallFn("netstack", "connect", 3, func() error {
		var err error
		s, err = st.Connect(t, ip, port)
		return err
	})
	return s, err
}

// Recv reads up to n bytes into the arena buffer at buf.
func (l *LibC) Recv(t *sched.Thread, s *net.Socket, buf mem.Addr, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var got int
	err := l.env.CallFn("netstack", "recv", 3, func() error {
		var err error
		got, err = s.Recv(t, buf, n)
		return err
	})
	return got, err
}

// RecvBuf is Recv with the destination named by a pool buffer
// descriptor. When the libc -> netstack crossing shares buffers by
// reference, the descriptor rides the gate frame and the stack fills
// the buffer in place; on copy-policy backends the shim degrades to
// the scalar ABI so the gate does not charge the payload words.
func (l *LibC) RecvBuf(t *sched.Thread, s *net.Socket, b mem.BufRef) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var got int
	do := func() error {
		var err error
		got, err = s.RecvRef(t, b)
		return err
	}
	var err error
	if l.env.SharesBufs("netstack") {
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1, Bufs: []mem.BufRef{b}}
		err = l.env.CallFrame("netstack", "recv", frame, do)
	} else {
		err = l.env.CallFn("netstack", "recv", 3, do)
	}
	return got, err
}

// Send writes n bytes from the arena buffer at buf.
func (l *LibC) Send(t *sched.Thread, s *net.Socket, buf mem.Addr, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var sent int
	err := l.env.CallFn("netstack", "send", 3, func() error {
		var err error
		sent, err = s.Send(t, buf, n)
		return err
	})
	return sent, err
}

// SendBuf is Send with the source named by a pool buffer descriptor;
// the stack pins it across the tcpip-thread handoff. Like RecvBuf it
// degrades to the scalar ABI on copy-policy backends.
func (l *LibC) SendBuf(t *sched.Thread, s *net.Socket, b mem.BufRef, n int) (int, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var sent int
	do := func() error {
		var err error
		sent, err = s.SendRef(t, b, n)
		return err
	}
	var err error
	if l.env.SharesBufs("netstack") {
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1, Bufs: []mem.BufRef{b}}
		err = l.env.CallFrame("netstack", "send", frame, do)
	} else {
		err = l.env.CallFn("netstack", "send", 3, do)
	}
	return sent, err
}

// Msg is one message of a vectored socket operation (recvmmsg/sendmmsg
// style): the pool buffer it reads into or writes from, the byte count
// requested (send) or transferred (filled in on return), and the
// per-message outcome. Vectored ops keep per-message semantics — each
// message is its own gate frame with its own error — but all messages
// of one call ride a single crossing on amortizing backends.
type Msg struct {
	Buf mem.BufRef
	N   int
	Err error
}

// RecvMsgBatch receives into up to len(msgs) buffers through one
// batched libc -> netstack crossing. The first message blocks like
// Recv; the rest drain only what the same burst already delivered
// (non-blocking), so a batch never waits for data beyond the first
// message. Each message's N and Err are filled in place; processing
// stops at the first error or empty non-blocking drain, leaving later
// messages untouched (N=0, Err=nil). Every message still pays the
// syscall-entry cost — batching amortizes crossings, not API work.
func (l *LibC) RecvMsgBatch(t *sched.Thread, s *net.Socket, msgs []Msg) {
	if len(msgs) == 0 {
		return
	}
	share := l.env.SharesBufs("netstack")
	stop := false
	calls := make([]rt.BatchCall, len(msgs))
	for i := range msgs {
		l.env.Charge(clock.CostSyscallish)
		l.env.Hard.OnFrame()
		i, m := i, &msgs[i]
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1}
		if share {
			frame.Bufs = []mem.BufRef{m.Buf}
		}
		calls[i] = rt.BatchCall{Frame: frame, Fn: func() error {
			if stop {
				return nil
			}
			var err error
			if i == 0 {
				m.N, err = s.RecvRef(t, m.Buf)
			} else {
				m.N, err = s.TryRecvRef(t, m.Buf)
			}
			m.Err = err
			if err != nil || (i > 0 && m.N == 0) {
				stop = true
			}
			return err
		}}
	}
	errs := l.env.CallBatch("netstack", "recv", calls)
	// A frame the supervisor rejected (shed, open breaker, deadline)
	// never ran its Fn; surface the typed error on the message.
	for i, err := range errs {
		if err != nil && msgs[i].Err == nil {
			msgs[i].Err = err
		}
	}
}

// SendMsgBatch transmits len(msgs) messages (msgs[i].N bytes from
// msgs[i].Buf) through one batched libc -> netstack crossing. N is
// updated to the bytes actually sent and Err to the per-message
// outcome; processing stops at the first failed message.
func (l *LibC) SendMsgBatch(t *sched.Thread, s *net.Socket, msgs []Msg) {
	if len(msgs) == 0 {
		return
	}
	share := l.env.SharesBufs("netstack")
	stop := false
	calls := make([]rt.BatchCall, len(msgs))
	for i := range msgs {
		l.env.Charge(clock.CostSyscallish)
		l.env.Hard.OnFrame()
		m := &msgs[i]
		frame := gate.CallFrame{ArgWords: 3, RetWords: 1}
		if share {
			frame.Bufs = []mem.BufRef{m.Buf}
		}
		calls[i] = rt.BatchCall{Frame: frame, Fn: func() error {
			if stop {
				m.N = 0
				return nil
			}
			var err error
			m.N, err = s.SendRef(t, m.Buf, m.N)
			m.Err = err
			if err != nil {
				stop = true
			}
			return err
		}}
	}
	errs := l.env.CallBatch("netstack", "send", calls)
	for i, err := range errs {
		if err != nil && msgs[i].Err == nil {
			// The frame was rejected before dispatch: nothing was sent.
			msgs[i].N = 0
			msgs[i].Err = err
		}
	}
}

// Close shuts the connection down.
func (l *LibC) Close(t *sched.Thread, s *net.Socket) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "close", 1, func() error {
		return s.Close(t)
	})
}

// UDPBind binds a datagram socket.
func (l *LibC) UDPBind(st *net.Stack, port uint16) (*net.UDPSocket, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var u *net.UDPSocket
	err := l.env.CallFn("netstack", "udp_bind", 1, func() error {
		var err error
		u, err = st.UDPBind(port)
		return err
	})
	return u, err
}

// SendTo transmits one datagram.
func (l *LibC) SendTo(t *sched.Thread, u *net.UDPSocket, ip net.IPAddr, port uint16, buf mem.Addr, n int) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "sendto", 4, func() error {
		return u.SendTo(t, ip, port, buf, n)
	})
}

// RecvFrom blocks for one datagram.
func (l *LibC) RecvFrom(t *sched.Thread, u *net.UDPSocket, buf mem.Addr, n int) (int, net.IPAddr, uint16, error) {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	var (
		got     int
		src     net.IPAddr
		srcPort uint16
	)
	err := l.env.CallFn("netstack", "recvfrom", 3, func() error {
		var err error
		got, src, srcPort, err = u.RecvFrom(t, buf, n)
		return err
	})
	return got, src, srcPort, err
}

// UDPClose unbinds a datagram socket.
func (l *LibC) UDPClose(u *net.UDPSocket) error {
	l.env.Charge(clock.CostSyscallish)
	l.env.Hard.OnFrame()
	return l.env.CallFn("netstack", "udp_close", 1, func() error {
		u.Close()
		return nil
	})
}
