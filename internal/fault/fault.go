// Package fault is FlexOS's fault-injection and containment layer.
//
// The paper's value proposition is that a compartment boundary
// *contains* damage: an out-of-compartment access trapped by MPK, a
// CHERI bounds violation or an ASAN redzone hit should cost one
// compartment its state, not the machine. This package gives the
// simulator that story. Protection faults raised inside a callee
// compartment — whether organic (mpk.Fault, sh.Violation, cheri.Fault)
// or injected for testing — are converted at the gate boundary into a
// typed Trap delivered to the *caller's* domain as an error return.
// Direct (intra-compartment) calls deliberately do not trap: an
// uncompartmentalized image dies of the same corruption an isolated
// image survives, which is exactly the blast-radius experiment.
package fault

import (
	"errors"
	"fmt"

	"flexos/internal/cheri"
	"flexos/internal/mem"
	"flexos/internal/mpk"
	"flexos/internal/sh"
)

// Kind classifies a protection fault by the mechanism that caught it.
type Kind int

// Fault kinds.
const (
	// KindInjected is deterministic gate-crossing corruption planted by
	// an Injector (the simulated exploit or wild write).
	KindInjected Kind = iota
	// KindMPK is a protection-key fault (access denied by PKRU).
	KindMPK
	// KindCHERI is a capability bounds/tag/seal violation.
	KindCHERI
	// KindASAN is a software-hardening violation (sh.Violation):
	// heap-buffer-overflow, use-after-free, poisoned access.
	KindASAN
	// KindSealedPKRU is an attempt to load an unregistered PKRU value
	// through a sealed WRPKRU (ERIM/page-table sealing rejection).
	KindSealedPKRU
	// KindSched is a scheduler kill-path or contract fault routed
	// through the trap type (verified-scheduler invariant violations).
	KindSched
	// KindDeadline is a virtual-clock deadline miss: a gate refused a
	// crossing whose fixed cost could no longer fit in the frame's
	// budget (see DeadlineExceeded). Deadline traps are load faults,
	// not memory faults: the supervisor never restarts them — an
	// absolute deadline cannot be beaten by replaying the call.
	KindDeadline
	// KindNetTimeout is transport death: the network stack declared a
	// connection dead (retransmit-limit exhaustion or keepalive probe
	// failure, see NetTimeout). Unlike KindDeadline it is containable
	// like a memory fault — the owning compartment's onfault policy
	// decides whether network death aborts, restarts or degrades it.
	KindNetTimeout
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInjected:
		return "injected"
	case KindMPK:
		return "mpk-pkey"
	case KindCHERI:
		return "cheri"
	case KindASAN:
		return "asan"
	case KindSealedPKRU:
		return "sealed-wrpkru"
	case KindSched:
		return "sched"
	case KindDeadline:
		return "deadline"
	case KindNetTimeout:
		return "net-timeout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Trap is a protection fault delivered to the caller's domain instead
// of a process-global panic: which compartment faulted, what mechanism
// caught it, where (a symbolic PC such as "libc->nw/sock_recv") and on
// which address, with the underlying mechanism error preserved for
// errors.As.
type Trap struct {
	Comp string
	Kind Kind
	PC   string
	Addr mem.Addr
	// Cause is the underlying mechanism error (nil for pure injections).
	Cause error
}

// Error implements error.
func (t *Trap) Error() string {
	s := fmt.Sprintf("fault: %v trap in compartment %q", t.Kind, t.Comp)
	if t.PC != "" {
		s += " at " + t.PC
	}
	if t.Addr != mem.NilAddr {
		s += fmt.Sprintf(" (addr %#x)", uint64(t.Addr))
	}
	if t.Cause != nil {
		s += ": " + t.Cause.Error()
	}
	return s
}

// Unwrap exposes the mechanism error to errors.Is/As.
func (t *Trap) Unwrap() error { return t.Cause }

// As extracts a Trap from an error chain.
func As(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// Classify wraps a mechanism-level fault error into a Trap attributed
// to compartment comp at the symbolic pc. Errors that are not
// protection faults (and errors that are already Traps) pass through
// unchanged, so gates can apply it to every callee return value.
func Classify(comp, pc string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := As(err); ok {
		return err
	}
	var mf *mpk.Fault
	if errors.As(err, &mf) {
		return &Trap{Comp: comp, Kind: KindMPK, PC: pc, Addr: mf.Addr, Cause: err}
	}
	var cf *cheri.Fault
	if errors.As(err, &cf) {
		return &Trap{Comp: comp, Kind: KindCHERI, PC: pc, Addr: cf.Cap.Base, Cause: err}
	}
	var sv *sh.Violation
	if errors.As(err, &sv) {
		return &Trap{Comp: comp, Kind: KindASAN, PC: pc, Addr: sv.Addr, Cause: err}
	}
	var de *DeadlineExceeded
	if errors.As(err, &de) {
		return &Trap{Comp: comp, Kind: KindDeadline, PC: pc, Cause: err}
	}
	var nt *NetTimeout
	if errors.As(err, &nt) {
		return &Trap{Comp: comp, Kind: KindNetTimeout, PC: pc, Cause: err}
	}
	return err
}

// Contain runs fn inside a trap boundary: a panic carrying a *Trap
// (raised by an Injector or any simulated protection mechanism) is
// recovered and returned as an error, and fault-typed error returns
// are classified into Traps. Non-Trap panics — simulator bugs — keep
// unwinding. Isolating gates wrap their callee in Contain; the direct
// (funccall) gate does not, which is what makes the containment story
// measurable.
func Contain(comp, pc string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			t, ok := r.(*Trap)
			if !ok {
				panic(r)
			}
			if t.Comp == "" {
				t.Comp = comp
			}
			err = t
		}
	}()
	return Classify(comp, pc, fn())
}

// Policy is a compartment's configured reaction to a trap it raised.
type Policy int

// Fault policies (configfile directive "onfault <comp> <policy>").
const (
	// PolicyAbort (the default) propagates the trap to the caller as an
	// error; the faulted call is not retried.
	PolicyAbort Policy = iota
	// PolicyRestart tears the faulted compartment's in-flight resources
	// down (pool buffers, drained heaps) and replays the gate call with
	// bounded retry and backoff.
	PolicyRestart
	// PolicyDegrade marks the compartment failed: the trap propagates
	// and every later call into the compartment fails fast with a
	// DegradedError, without crossing.
	PolicyDegrade
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyAbort:
		return "abort"
	case PolicyRestart:
		return "restart"
	case PolicyDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a config string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "abort":
		return PolicyAbort, nil
	case "restart":
		return PolicyRestart, nil
	case "degrade":
		return PolicyDegrade, nil
	default:
		return 0, fmt.Errorf("fault: unknown policy %q", s)
	}
}

// DegradedError is returned for calls into a compartment that faulted
// under PolicyDegrade: the compartment is out of service but the
// machine keeps running.
type DegradedError struct {
	Comp  string
	Cause *Trap
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("fault: compartment %q degraded after %v trap", e.Comp, e.Cause.Kind)
}

// Unwrap exposes the original trap.
func (e *DegradedError) Unwrap() error { return e.Cause }
