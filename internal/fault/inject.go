package fault

import (
	"fmt"

	"flexos/internal/mem"
)

// Injection arms one deterministic fault: on the After-th named call
// into library Lib (optionally restricted to function Fn), the injector
// panics with a Trap — simulating corruption detected at the crossing
// into that library's compartment. The panic is raised *before* the
// callee runs, so a compartment restarted by the supervisor replays the
// call against coherent state.
type Injection struct {
	// Lib is the callee library the fault fires in.
	Lib string
	// Fn, when non-empty, restricts the trigger to calls of that name.
	Fn string
	// After is the 1-based index of the matching call that fires.
	After uint64
	// Kind of the injected trap (default KindInjected).
	Kind Kind
	// Addr is the simulated faulting address (optional).
	Addr mem.Addr
	// LeakBufs, when positive, allocates that many shared-pool buffers
	// in the faulted compartment's name before trapping — the in-flight
	// allocations a crashed compartment strands, which the supervisor's
	// teardown must reclaim for the pool's leak accounting to read zero.
	LeakBufs int
}

// Injector fires armed Injections from the gate registry's call choke
// point. It is deterministic: triggers count named call entries, never
// time or randomness.
type Injector struct {
	pool       *mem.SharedPool
	armed      []Injection
	counts     map[string]uint64 // "lib" or "lib:fn" -> entries seen
	fired      uint64
	lastTrap   *Trap
	leakedRefs []mem.BufRef
}

// NewInjector returns an empty injector; Arm it and install it on a
// machine's registry.
func NewInjector() *Injector {
	return &Injector{counts: make(map[string]uint64)}
}

// SetPool provides the shared pool LeakBufs allocations come from.
func (in *Injector) SetPool(p *mem.SharedPool) { in.pool = p }

// Arm schedules an injection. After defaults to 1.
func (in *Injector) Arm(inj Injection) {
	if inj.After == 0 {
		inj.After = 1
	}
	in.armed = append(in.armed, inj)
}

// Fired reports how many injections have gone off.
func (in *Injector) Fired() uint64 { return in.fired }

// LastTrap returns the most recently injected trap (nil before the
// first firing).
func (in *Injector) LastTrap() *Trap { return in.lastTrap }

// Leaked returns the buffers deliberately stranded by LeakBufs
// injections, for tests that verify the supervisor reclaimed them.
func (in *Injector) Leaked() []mem.BufRef { return in.leakedRefs }

// OnCall is the registry hook: it observes one named call entering
// toLib (which lives in compartment toComp) and panics with a *Trap if
// an armed injection matches. Isolating gates contain the panic;
// direct calls let it kill the image.
func (in *Injector) OnCall(toLib, toComp, fnName string) {
	key := toLib
	if fnName != "" {
		in.counts[toLib+":"+fnName]++
	}
	in.counts[key]++
	for i := range in.armed {
		inj := &in.armed[i]
		if inj.After == 0 {
			continue // already fired
		}
		if inj.Lib != toLib || (inj.Fn != "" && inj.Fn != fnName) {
			continue
		}
		k := inj.Lib
		if inj.Fn != "" {
			k = inj.Lib + ":" + inj.Fn
		}
		if in.counts[k] != inj.After {
			continue
		}
		inj.After = 0 // one-shot
		in.fire(inj, toComp, fnName)
	}
}

func (in *Injector) fire(inj *Injection, toComp, fnName string) {
	if inj.LeakBufs > 0 && in.pool != nil {
		for i := 0; i < inj.LeakBufs; i++ {
			if b, err := in.pool.Get(256); err == nil {
				in.leakedRefs = append(in.leakedRefs, b)
			}
		}
	}
	pc := inj.Lib
	if fnName != "" {
		pc = fmt.Sprintf("%s:%s", inj.Lib, fnName)
	}
	t := &Trap{Comp: toComp, Kind: inj.Kind, PC: pc, Addr: inj.Addr}
	in.fired++
	in.lastTrap = t
	panic(t)
}
