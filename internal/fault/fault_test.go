package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"flexos/internal/cheri"
	"flexos/internal/mem"
	"flexos/internal/mpk"
	"flexos/internal/sh"
)

func TestTrapErrorAndUnwrap(t *testing.T) {
	cause := errors.New("underlying")
	tr := &Trap{Comp: "nw", Kind: KindMPK, PC: "netstack:recv", Addr: 0x5000, Cause: cause}
	msg := tr.Error()
	for _, want := range []string{"mpk-pkey", `"nw"`, "netstack:recv", "0x5000", "underlying"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if !errors.Is(tr, cause) {
		t.Error("Unwrap does not expose the cause")
	}
}

func TestAsFindsWrappedTrap(t *testing.T) {
	tr := &Trap{Comp: "lc", Kind: KindInjected}
	wrapped := fmt.Errorf("gate: %w", tr)
	got, ok := As(wrapped)
	if !ok || got != tr {
		t.Fatalf("As = (%v, %v), want the original trap", got, ok)
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("As matched a non-trap error")
	}
	if _, ok := As(nil); ok {
		t.Fatal("As matched nil")
	}
}

func TestClassify(t *testing.T) {
	mpkErr := &mpk.Fault{Addr: 0x2000, Key: 3, Write: true}
	cheriErr := &cheri.Fault{Cap: cheri.Capability{Base: 0x3000, Len: 64}, Op: "load", Detail: "out of bounds"}
	asanErr := &sh.Violation{Addr: 0x4000, Size: 8, Write: true, Kind: "heap-buffer-overflow"}

	tests := []struct {
		name     string
		err      error
		wantKind Kind
		wantAddr mem.Addr
	}{
		{"mpk", mpkErr, KindMPK, 0x2000},
		{"mpk-wrapped", fmt.Errorf("memcpy: %w", mpkErr), KindMPK, 0x2000},
		{"cheri", cheriErr, KindCHERI, 0x3000},
		{"asan", asanErr, KindASAN, 0x4000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out := Classify("nw", "pc", tc.err)
			tr, ok := As(out)
			if !ok {
				t.Fatalf("Classify(%v) = %v, not a trap", tc.err, out)
			}
			if tr.Comp != "nw" || tr.Kind != tc.wantKind || tr.Addr != tc.wantAddr {
				t.Fatalf("trap = %+v, want comp=nw kind=%v addr=%#x", tr, tc.wantKind, uint64(tc.wantAddr))
			}
			if !errors.Is(out, tc.err) {
				t.Fatal("mechanism error lost from the chain")
			}
		})
	}

	if Classify("nw", "pc", nil) != nil {
		t.Fatal("Classify(nil) != nil")
	}
	plain := errors.New("not a protection fault")
	if got := Classify("nw", "pc", plain); got != plain {
		t.Fatalf("plain error rewritten: %v", got)
	}
	already := &Trap{Comp: "other", Kind: KindCHERI}
	if got := Classify("nw", "pc", already); got != error(already) {
		t.Fatalf("existing trap rewritten: %v", got)
	}
}

func TestContainRecoversTrapPanic(t *testing.T) {
	err := Contain("nw", "netstack:recv", func() error {
		panic(&Trap{Kind: KindInjected, Addr: 0x5000})
	})
	tr, ok := As(err)
	if !ok {
		t.Fatalf("err = %v, want trap", err)
	}
	if tr.Comp != "nw" {
		t.Fatalf("Comp = %q, want filled in by Contain", tr.Comp)
	}
}

func TestContainKeepsExplicitComp(t *testing.T) {
	err := Contain("outer", "pc", func() error {
		panic(&Trap{Comp: "inner", Kind: KindInjected})
	})
	tr, _ := As(err)
	if tr == nil || tr.Comp != "inner" {
		t.Fatalf("trap = %+v, want Comp=inner preserved", tr)
	}
}

func TestContainClassifiesReturns(t *testing.T) {
	mpkErr := &mpk.Fault{Addr: 0x2000, Key: 2}
	err := Contain("nw", "pc", func() error { return mpkErr })
	if tr, ok := As(err); !ok || tr.Kind != KindMPK {
		t.Fatalf("err = %v, want KindMPK trap", err)
	}
	if err := Contain("nw", "pc", func() error { return nil }); err != nil {
		t.Fatalf("clean call returned %v", err)
	}
}

func TestContainRepanicsNonTrap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("simulator-bug panic was swallowed")
		}
	}()
	_ = Contain("nw", "pc", func() error { panic("simulator bug") })
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyAbort, PolicyRestart, PolicyDegrade} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = (%v, %v)", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("explode"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDegradedErrorChain(t *testing.T) {
	tr := &Trap{Comp: "nw", Kind: KindMPK}
	de := &DegradedError{Comp: "nw", Cause: tr}
	if got, ok := As(de); !ok || got != tr {
		t.Fatalf("DegradedError does not expose its trap: %v", de)
	}
}

func injectorPool(t *testing.T) *mem.SharedPool {
	t.Helper()
	a := mem.NewArena(1 << 20)
	h, err := mem.NewHeap(a, 4096, 1<<20-4096, mem.KeyShared)
	if err != nil {
		t.Fatal(err)
	}
	return mem.NewSharedPool(h)
}

func containedCall(in *Injector, lib, comp, fn string) error {
	return Contain(comp, lib+":"+fn, func() error {
		in.OnCall(lib, comp, fn)
		return nil
	})
}

func TestInjectorFiresAtExactCount(t *testing.T) {
	in := NewInjector()
	in.Arm(Injection{Lib: "netstack", Fn: "recv", After: 3, Addr: 0x5000})
	for i := 1; i <= 2; i++ {
		if err := containedCall(in, "netstack", "nw", "recv"); err != nil {
			t.Fatalf("call %d trapped early: %v", i, err)
		}
	}
	// Calls to other functions and libraries must not advance the trigger.
	if err := containedCall(in, "netstack", "nw", "send"); err != nil {
		t.Fatalf("unmatched fn trapped: %v", err)
	}
	if err := containedCall(in, "libc", "lc", "recv"); err != nil {
		t.Fatalf("unmatched lib trapped: %v", err)
	}
	err := containedCall(in, "netstack", "nw", "recv")
	tr, ok := As(err)
	if !ok {
		t.Fatalf("3rd matching call did not trap: %v", err)
	}
	if tr.Comp != "nw" || tr.PC != "netstack:recv" || tr.Addr != 0x5000 {
		t.Fatalf("trap = %+v", tr)
	}
	if in.Fired() != 1 || in.LastTrap() != tr {
		t.Fatalf("Fired=%d LastTrap=%v", in.Fired(), in.LastTrap())
	}
}

func TestInjectorIsOneShot(t *testing.T) {
	in := NewInjector()
	in.Arm(Injection{Lib: "libc"})
	if err := containedCall(in, "libc", "lc", "memcpy"); err == nil {
		t.Fatal("After default of 1 did not fire on first call")
	}
	for i := 0; i < 5; i++ {
		if err := containedCall(in, "libc", "lc", "memcpy"); err != nil {
			t.Fatalf("one-shot injection fired again: %v", err)
		}
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired())
	}
}

func TestInjectorLeaksBufs(t *testing.T) {
	pool := injectorPool(t)
	in := NewInjector()
	in.SetPool(pool)
	in.Arm(Injection{Lib: "netstack", LeakBufs: 3})
	err := containedCall(in, "netstack", "nw", "recv")
	if _, ok := As(err); !ok {
		t.Fatalf("injection did not fire: %v", err)
	}
	if len(in.Leaked()) != 3 || pool.Outstanding() != 3 {
		t.Fatalf("leaked=%d outstanding=%d, want 3 stranded buffers",
			len(in.Leaked()), pool.Outstanding())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindInjected:   "injected",
		KindMPK:        "mpk-pkey",
		KindCHERI:      "cheri",
		KindASAN:       "asan",
		KindSealedPKRU: "sealed-wrpkru",
		KindSched:      "sched",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
