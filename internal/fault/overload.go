package fault

import (
	"errors"
	"fmt"
)

// Overload faults. Where fault.go models *memory* damage (a wild write
// caught by MPK/CHERI/ASAN), this file models *load* damage: a call
// that arrives too late, a compartment whose admission queue is full,
// a compartment whose circuit breaker is open. All three are cheap
// typed errors delivered to the caller's domain — the whole point of
// overload control is that rejecting work costs far less than doing it.

// DeadlineExceeded is the mechanism-level error raised by an isolating
// gate when the crossing's fixed cost can no longer fit inside the
// frame's virtual-clock deadline. Classify wraps it into a
// KindDeadline Trap, so it flows through Contain and the supervisor
// exactly like a protection fault.
type DeadlineExceeded struct {
	// PC is the symbolic crossing ("libc->nw").
	PC string
	// Deadline is the absolute cycle the frame had to complete by.
	Deadline uint64
	// Now is the virtual clock when the gate refused entry.
	Now uint64
}

// Error implements error.
func (e *DeadlineExceeded) Error() string {
	return fmt.Sprintf("fault: deadline exceeded at %s (deadline %d, now %d)",
		e.PC, e.Deadline, e.Now)
}

// ShedError is returned when a compartment's admission queue rejects a
// call before any crossing happens: the queue is at its configured
// depth (or, under the deadline policy, the frame's budget has already
// expired). Shedding is deliberately cheap — no gate is crossed, no
// callee work runs.
type ShedError struct {
	// Comp is the compartment that shed the call.
	Comp string
	// Depth is the configured queue depth (0 when the shed was a
	// deadline-policy expiry rather than a full queue).
	Depth int
}

// Error implements error.
func (e *ShedError) Error() string {
	if e.Depth > 0 {
		return fmt.Sprintf("fault: compartment %q shed call (admission queue full at depth %d)", e.Comp, e.Depth)
	}
	return fmt.Sprintf("fault: compartment %q shed call (deadline already expired)", e.Comp)
}

// BreakerOpenError is returned while a compartment's circuit breaker
// is open: after too many sheds/traps in a window the supervisor fails
// calls fast, without crossing, until a half-open probe succeeds.
type BreakerOpenError struct {
	// Comp is the compartment whose breaker is open.
	Comp string
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("fault: compartment %q circuit breaker open", e.Comp)
}

// IsOverload reports whether err is an overload-control rejection — a
// shed, an open circuit breaker, or a deadline trap — as opposed to a
// memory fault or an application error. Overload-aware servers use it
// to pick the cheap degradation path (drop, -BUSY reply) instead of
// failing the connection.
func IsOverload(err error) bool {
	var se *ShedError
	if errors.As(err, &se) {
		return true
	}
	var be *BreakerOpenError
	if errors.As(err, &be) {
		return true
	}
	if t, ok := As(err); ok && t.Kind == KindDeadline {
		return true
	}
	return false
}

// ShedPolicy says what a compartment's admission queue does with a
// call that cannot be admitted immediately.
type ShedPolicy int

// Admission policies (configfile directive "overload <comp> <depth> <policy>").
const (
	// ShedPolicyShed rejects excess calls with a ShedError the moment
	// the queue is at depth.
	ShedPolicyShed ShedPolicy = iota
	// ShedPolicyBlock parks the calling thread until a slot frees up —
	// backpressure instead of rejection. Depth bounds in-flight calls,
	// not total offered load.
	ShedPolicyBlock
	// ShedPolicyDeadline sheds calls whose frame deadline has already
	// expired (they could only waste the callee's time) and calls
	// arriving past the configured depth.
	ShedPolicyDeadline
)

// String implements fmt.Stringer.
func (p ShedPolicy) String() string {
	switch p {
	case ShedPolicyShed:
		return "shed"
	case ShedPolicyBlock:
		return "block"
	case ShedPolicyDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy converts a config string to a ShedPolicy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "shed":
		return ShedPolicyShed, nil
	case "block":
		return ShedPolicyBlock, nil
	case "deadline":
		return ShedPolicyDeadline, nil
	default:
		return 0, fmt.Errorf("fault: unknown shed policy %q", s)
	}
}
