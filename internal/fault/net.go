package fault

import "fmt"

// NetTimeout is the structured cause of a transport death: the network
// stack exhausted its recovery budget for a connection — every
// retransmission of the oldest unacknowledged segment timed out, or the
// keepalive prober gave up on an idle peer — and aborted the socket.
//
// It is the network analogue of DeadlineExceeded: a typed error the
// stack returns (exactly once per socket) through the socket API so the
// isolating gate's Contain/Classify boundary converts it into a
// Trap{Kind: KindNetTimeout} against the owning compartment, where the
// configured onfault policy takes over. Subsequent calls on the dead
// socket return a plain closed-connection error, so a restart policy's
// replay settles clean and counts as a recovery while the application's
// own retry logic re-establishes the connection.
type NetTimeout struct {
	// PC is the symbolic location that declared death, e.g.
	// "netstack:rtx" or "netstack:keepalive".
	PC string
	// Retransmits is how many times the oldest segment was retransmitted
	// before the stack gave up (0 for keepalive death).
	Retransmits int
	// Probes is how many keepalive probes went unanswered (0 for
	// retransmit exhaustion).
	Probes int
	// Elapsed is the virtual cycles between arming the first timer of
	// the losing recovery attempt and declaring death.
	Elapsed uint64
}

// Error implements error.
func (e *NetTimeout) Error() string {
	switch {
	case e.Probes > 0:
		return fmt.Sprintf("fault: net timeout at %s: peer dead after %d keepalive probes (%d cycles)",
			e.PC, e.Probes, e.Elapsed)
	default:
		return fmt.Sprintf("fault: net timeout at %s: connection dead after %d retransmits (%d cycles)",
			e.PC, e.Retransmits, e.Elapsed)
	}
}
