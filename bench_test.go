package flexos_test

import (
	"fmt"
	"testing"

	"flexos"
	"flexos/internal/cheri"
	"flexos/internal/clock"
	"flexos/internal/core/build"
	"flexos/internal/core/coloring"
	"flexos/internal/core/compat"
	"flexos/internal/core/explore"
	"flexos/internal/core/gate"
	"flexos/internal/core/spec"
	"flexos/internal/harness"
	"flexos/internal/mem"
	"flexos/internal/mpk"
	flexnet "flexos/internal/net"
	"flexos/internal/sched"
)

// Every table and figure of the paper's evaluation has a bench here.
// Custom metrics report the *simulated* performance (sim-Mbps,
// sim-kreq/s, sim-ns/switch); ns/op is the host cost of running the
// simulation and is not a paper metric.

// --- Fig. 3: iperf throughput across isolation mechanisms ------------

func fig3Bench(b *testing.B, cfg build.Config, recvBuf int) {
	b.Helper()
	const total = 512 << 10
	var mbps float64
	for i := 0; i < b.N; i++ {
		r, err := harness.RunIperf(cfg, total, recvBuf)
		if err != nil {
			b.Fatal(err)
		}
		mbps = r.Gbps * 1000
	}
	b.ReportMetric(mbps, "sim-Mbps")
}

func BenchmarkFig3(b *testing.B) {
	configs := []build.Config{
		{Name: "baseline-kvm"},
		{Name: "mpk-shared", Compartments: build.NWOnly(), Backend: gate.MPKShared, Alloc: build.AllocPerCompartment},
		{Name: "mpk-switched", Compartments: build.NWOnly(), Backend: gate.MPKSwitched, Alloc: build.AllocPerCompartment},
		{Name: "sh-netstack", SH: map[string]flexos.HardeningProfile{"netstack": harness.SHProfile}, Alloc: build.AllocPerLibrary},
		{Name: "baseline-xen", Platform: 1},
		{Name: "vm-rpc-xen", Compartments: build.NWOnly(), Backend: gate.VMRPC, Platform: 1, Alloc: build.AllocPerCompartment},
	}
	for _, cfg := range configs {
		for _, size := range []int{64, 1024, 32 << 10} {
			b.Run(fmt.Sprintf("%s/buf=%d", cfg.Name, size), func(b *testing.B) {
				fig3Bench(b, cfg, size)
			})
		}
	}
}

// --- Fig. 3 extension: copy vs shared data path ----------------------

// dataPathConfig is the MPK-shared NW-only image of the data-path
// comparison.
func dataPathConfig(dp flexnet.DataPath) build.Config {
	return build.Config{Name: "mpk-shared-" + dp.String(), Compartments: build.NWOnly(),
		Backend: gate.MPKShared, Alloc: build.AllocPerCompartment, DataPath: dp}
}

func BenchmarkFig3DataPath(b *testing.B) {
	const total, recvBuf = 2 << 20, 16 << 10
	for _, dp := range []flexnet.DataPath{flexnet.DataPathShared, flexnet.DataPathCopy} {
		b.Run("datapath="+dp.String(), func(b *testing.B) {
			var mbps float64
			var copyCycles uint64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunIperf(dataPathConfig(dp), total, recvBuf)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.Gbps * 1000
				copyCycles = r.ByComponent[clock.CompCopy]
			}
			b.ReportMetric(mbps, "sim-Mbps")
			b.ReportMetric(float64(copyCycles), "copy-cycles")
		})
	}
}

// TestDataPathSpeedup pins the tentpole acceptance bar: at 16 KiB recv
// buffers on the MPK-shared NW-only image, shared descriptors beat
// per-boundary copies by at least 20%, with the whole delta attributed
// to clock.CompCopy, and the pool leaks nothing on either machine.
func TestDataPathSpeedup(t *testing.T) {
	const total, recvBuf = 2 << 20, 16 << 10
	shared, err := harness.RunIperf(dataPathConfig(flexnet.DataPathShared), total, recvBuf)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := harness.RunIperf(dataPathConfig(flexnet.DataPathCopy), total, recvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if got := shared.ByComponent[clock.CompCopy]; got != 0 {
		t.Errorf("shared data path charged %d copy cycles, want 0", got)
	}
	copyCycles := copied.ByComponent[clock.CompCopy]
	if copyCycles == 0 {
		t.Error("copy data path charged no copy cycles")
	}
	if diff := copied.ServerCycles - shared.ServerCycles; diff != copyCycles {
		t.Errorf("cycle delta %d not fully attributed to %s (%d)", diff, clock.CompCopy, copyCycles)
	}
	speedup := (shared.Gbps/copied.Gbps - 1) * 100
	if speedup < 20 {
		t.Errorf("shared data path %.1f%% faster than copy, want >= 20%%", speedup)
	}
	t.Logf("shared %.2f Gb/s vs copy %.2f Gb/s: +%.1f%%, %d copy cycles",
		shared.Gbps, copied.Gbps, speedup, copyCycles)

	// The harness fails a run on pool leaks; assert the accounting
	// directly on a world as well.
	w, err := build.NewWorld(dataPathConfig(flexnet.DataPathShared))
	if err != nil {
		t.Fatal(err)
	}
	srv := w.Server.Pool
	if srv == nil {
		t.Fatal("server machine built without a shared pool")
	}
	if bufs, refs := srv.Outstanding(), srv.OutstandingRefs(); bufs != 0 || refs != 0 {
		t.Errorf("fresh world: %d buffers, %d refs outstanding", bufs, refs)
	}
}

// --- Table 1: iperf with per-component software hardening ------------

func BenchmarkTable1(b *testing.B) {
	rows := map[string][]string{
		"none":     nil,
		"sched":    {"sched"},
		"netstack": {"netstack"},
		"libc":     {"libc"},
		"rest":     {"rest", "app", "alloc"},
		"entire":   {"sched", "netstack", "libc", "rest", "app", "alloc"},
	}
	for name, libs := range rows {
		b.Run("sh="+name, func(b *testing.B) {
			sh := make(map[string]flexos.HardeningProfile, len(libs))
			for _, l := range libs {
				sh[l] = harness.SHProfile
			}
			cfg := build.Config{Alloc: build.AllocPerLibrary, SH: sh}
			var gbps float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunIperf(cfg, 512<<10, 8<<10)
				if err != nil {
					b.Fatal(err)
				}
				gbps = r.Gbps
			}
			b.ReportMetric(gbps*1000, "sim-Mbps")
		})
	}
}

// --- Fig. 4: Redis under SH configs and the verified scheduler -------

func BenchmarkFig4(b *testing.B) {
	configs := []build.Config{
		{Name: "no-sh"},
		{Name: "sh-global-alloc", SH: map[string]flexos.HardeningProfile{"netstack": harness.SHProfile}, Alloc: build.AllocGlobal},
		{Name: "sh-local-alloc", SH: map[string]flexos.HardeningProfile{"netstack": harness.SHProfile}, Alloc: build.AllocPerLibrary},
		{Name: "verified-sched", Sched: build.SchedVerified},
	}
	for _, cfg := range configs {
		for _, payload := range []int{5, 50, 500} {
			for _, op := range []harness.RedisOp{harness.OpSET, harness.OpGET} {
				b.Run(fmt.Sprintf("%s/%s/%dB", cfg.Name, op, payload), func(b *testing.B) {
					var kreq float64
					for i := 0; i < b.N; i++ {
						r, err := harness.RunRedis(cfg, op, payload, 96)
						if err != nil {
							b.Fatal(err)
						}
						kreq = r.KReqPerSec
					}
					b.ReportMetric(kreq, "sim-kreq/s")
				})
			}
		}
	}
}

// --- Fig. 5: Redis under MPK compartmentalization models -------------

func BenchmarkFig5(b *testing.B) {
	models := []struct {
		name  string
		comps []build.Compartment
	}{
		{"no-isol", nil},
		{"nw-only", build.NWOnly()},
		{"nw-sched-rest", build.NWSchedRest()},
		{"nw-plus-sched", build.NWPlusSched()},
	}
	for _, m := range models {
		for _, backend := range []gate.Backend{gate.MPKShared, gate.MPKSwitched} {
			if m.comps == nil && backend == gate.MPKSwitched {
				continue // the baseline has no crossings; one run suffices
			}
			name := m.name
			if m.comps != nil {
				name += "/" + backend.String()
			}
			b.Run(name, func(b *testing.B) {
				cfg := build.Config{Compartments: m.comps, Backend: backend, Alloc: build.AllocPerCompartment}
				if m.comps == nil {
					cfg.Alloc = build.AllocGlobal
				}
				var kreq float64
				for i := 0; i < b.N; i++ {
					r, err := harness.RunRedis(cfg, harness.OpGET, 50, 96)
					if err != nil {
						b.Fatal(err)
					}
					kreq = r.KReqPerSec
				}
				b.ReportMetric(kreq, "sim-kreq/s")
			})
		}
	}
}

// --- §4: context-switch latency ---------------------------------------

func BenchmarkContextSwitch(b *testing.B) {
	kinds := map[string]func() sched.Scheduler{
		"c":        func() sched.Scheduler { return sched.NewCScheduler() },
		"verified": func() sched.Scheduler { return sched.NewVerifiedScheduler() },
	}
	for name, mk := range kinds {
		b.Run(name, func(b *testing.B) {
			var ns float64
			for i := 0; i < b.N; i++ {
				s := mk()
				cpu := clock.New()
				body := func(th *sched.Thread) {
					for j := 0; j < 500; j++ {
						th.Yield()
					}
				}
				s.Spawn("a", cpu, body)
				s.Spawn("b", cpu, body)
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				ns = clock.Nanoseconds(s.SwitchCost())
			}
			b.ReportMetric(ns, "sim-ns/switch")
		})
	}
}

// --- Ablations: design choices DESIGN.md calls out --------------------

// BenchmarkAblationSealPolicy compares PKRU-integrity policies (the
// MPK backend must prevent unauthorized PKRU writes via static
// analysis, runtime checks or page-table sealing).
func BenchmarkAblationSealPolicy(b *testing.B) {
	for _, pol := range []mpk.SealPolicy{mpk.SealStatic, mpk.SealRuntime, mpk.SealPageTable} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := build.Config{Compartments: build.NWOnly(), Backend: gate.MPKShared,
				Alloc: build.AllocPerCompartment, Seal: pol}
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunIperf(cfg, 512<<10, 1024)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.Gbps * 1000
			}
			b.ReportMetric(mbps, "sim-Mbps")
		})
	}
}

// BenchmarkAblationAllocatorPolicy isolates the allocator-granularity
// choice under hardening (the Fig. 4 mechanism).
func BenchmarkAblationAllocatorPolicy(b *testing.B) {
	for _, pol := range []build.AllocPolicy{build.AllocGlobal, build.AllocPerCompartment, build.AllocPerLibrary} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := build.Config{SH: map[string]flexos.HardeningProfile{"netstack": harness.SHProfile}, Alloc: pol}
			var kreq float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunRedis(cfg, harness.OpSET, 50, 96)
				if err != nil {
					b.Fatal(err)
				}
				kreq = r.KReqPerSec
			}
			b.ReportMetric(kreq, "sim-kreq/s")
		})
	}
}

// BenchmarkAblationColoring compares the coloring algorithms on the
// default image's conflict graph.
func BenchmarkAblationColoring(b *testing.B) {
	m := compat.BuildMatrix(spec.DefaultImage())
	g := coloring.FromMatrix(m)
	b.Run("greedy", func(b *testing.B) {
		var colors int
		for i := 0; i < b.N; i++ {
			colors = coloring.Greedy(g).NumColors
		}
		b.ReportMetric(float64(colors), "compartments")
	})
	b.Run("dsatur", func(b *testing.B) {
		var colors int
		for i := 0; i < b.N; i++ {
			colors = coloring.DSATUR(g).NumColors
		}
		b.ReportMetric(float64(colors), "compartments")
	})
	b.Run("exact", func(b *testing.B) {
		var colors int
		for i := 0; i < b.N; i++ {
			a, err := coloring.Exact(g)
			if err != nil {
				b.Fatal(err)
			}
			colors = a.NumColors
		}
		b.ReportMetric(float64(colors), "compartments")
	})
}

// BenchmarkAblationGateCost measures the raw cost of one crossing per
// backend (simulated cycles reported).
// gateFor builds one standalone gate of the given backend over arena,
// charging cpu — shared by the gate-cost ablation and the crossing
// amortization microbenchmarks.
func gateFor(b *testing.B, backend gate.Backend, arena *mem.Arena, cpu *clock.CPU) gate.Gate {
	b.Helper()
	switch backend {
	case gate.FuncCall:
		return gate.NewFuncCall(cpu)
	case gate.MPKShared:
		return gate.NewMPKShared(mpk.New(arena, cpu), cpu)
	case gate.MPKSwitched:
		return gate.NewMPKSwitched(mpk.New(arena, cpu), cpu)
	case gate.VMRPC:
		return gate.NewVMRPC(cpu, nil)
	case gate.CHERI:
		m := cheri.New(arena, cpu)
		cg := gate.NewCHERI(m, cpu)
		root, err := m.Root(mem.PageSize, mem.PageSize,
			cheri.PermRead|cheri.PermWrite|cheri.PermExecute)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"a", "b"} {
			otype := m.AllocOType()
			code, _ := m.Seal(root, otype)
			data, _ := m.Seal(root, otype)
			if err := cg.RegisterEntry(name, code, data); err != nil {
				b.Fatal(err)
			}
		}
		return cg
	}
	b.Fatalf("unknown backend %v", backend)
	return nil
}

func BenchmarkAblationGateCost(b *testing.B) {
	arena := mem.NewArena(16 * mem.PageSize)
	for _, backend := range []gate.Backend{gate.FuncCall, gate.MPKShared, gate.MPKSwitched, gate.VMRPC, gate.CHERI} {
		b.Run(backend.String(), func(b *testing.B) {
			cpu := clock.New()
			g := gateFor(b, backend, arena, cpu)
			from, to := gate.NewDomain("a", 1), gate.NewDomain("b", 2)
			for i := 0; i < b.N; i++ {
				if err := g.Call(from, to, gate.CallFrame{ArgWords: 2, RetWords: 1}, func() error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cpu.Cycles())/float64(b.N), "sim-cycles/crossing")
		})
	}
}

// --- Gate crossing amortization ---------------------------------------

// gateBenchBackends are the backends the crossing microbenchmarks pin.
var gateBenchBackends = []gate.Backend{gate.FuncCall, gate.MPKShared, gate.MPKSwitched, gate.VMRPC, gate.CHERI}

// BenchmarkGateCall pins the deterministic per-call cost of one
// cross-compartment gate call, per backend. sim-cycles/call is exact
// virtual time: the CI gate holds it to tight tolerances.
func BenchmarkGateCall(b *testing.B) {
	arena := mem.NewArena(16 * mem.PageSize)
	for _, backend := range gateBenchBackends {
		b.Run(backend.String(), func(b *testing.B) {
			cpu := clock.New()
			g := gateFor(b, backend, arena, cpu)
			from, to := gate.NewDomain("a", 1), gate.NewDomain("b", 2)
			for i := 0; i < b.N; i++ {
				if err := g.Call(from, to, gate.CallFrame{ArgWords: 2, RetWords: 1}, func() error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cpu.Cycles())/float64(b.N), "sim-cycles/call")
		})
	}
}

// BenchmarkGateCallBatch pins the amortized per-frame cost of a
// depth-16 CallBatch, per backend. Backends without a batched entry
// path (direct, CHERI) degenerate to a loop of calls, so their
// per-frame cost matches BenchmarkGateCall; MPK and VM-RPC pay the
// crossing once per batch plus a small dispatch cost per frame.
func BenchmarkGateCallBatch(b *testing.B) {
	const depth = 16
	arena := mem.NewArena(16 * mem.PageSize)
	for _, backend := range gateBenchBackends {
		b.Run(backend.String(), func(b *testing.B) {
			cpu := clock.New()
			g := gateFor(b, backend, arena, cpu)
			from, to := gate.NewDomain("a", 1), gate.NewDomain("b", 2)
			frames := make([]gate.CallFrame, depth)
			fns := make([]func() error, depth)
			for i := range frames {
				frames[i] = gate.CallFrame{ArgWords: 2, RetWords: 1}
				fns[i] = func() error { return nil }
			}
			for i := 0; i < b.N; i++ {
				if bg, ok := g.(gate.BatchGate); ok {
					for _, err := range bg.CallBatch(from, to, frames, fns) {
						if err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for j := range frames {
						if err := g.Call(from, to, frames[j], fns[j]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(cpu.Cycles())/float64(b.N*depth), "sim-cycles/frame")
		})
	}
}

// BenchmarkBatching runs the crossing-amortization sweep (quick: depths
// 1 and 16) and reports the headline simulated metrics the CI gate
// pins: depth-16 iperf throughput per backend and its gain over the
// unbatched image.
func BenchmarkBatching(b *testing.B) {
	var res *harness.BatchingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Batching(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1]
		switch s.Backend {
		case gate.FuncCall:
			b.ReportMetric(last.Mbps, "sim-direct-Mbps")
		case gate.MPKSwitched:
			b.ReportMetric(last.Mbps, "sim-mpksw-Mbps")
			b.ReportMetric(last.SpeedupPct, "sim-mpksw-gain-%")
		case gate.VMRPC:
			b.ReportMetric(last.Mbps, "sim-vmrpc-Mbps")
			b.ReportMetric(last.SpeedupPct, "sim-vmrpc-gain-%")
		}
	}
}

// TestBatchingSpeedup pins the tentpole acceptance bar: at depth 16 on
// the iperf workload, the MPK-switched and VM-RPC images beat their
// unbatched selves by at least 25%, and every saved cycle is accounted
// for by the crossing-bearing components (gate entry, VMM notify, the
// netstack's per-segment work, the NIC driver) — batching amortizes
// crossings, it does not skip work. Pool-leak accounting is enforced
// inside every RunIperf the sweep performs.
func TestBatchingSpeedup(t *testing.T) {
	res, err := harness.Batching(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		d1 := s.Points[0]
		d16 := s.Points[len(s.Points)-1]
		if d1.Depth != 1 || d16.Depth != 16 {
			t.Fatalf("%s: unexpected depth sweep %v", s.Label, res.Depths)
		}
		if s.Backend == gate.MPKSwitched || s.Backend == gate.VMRPC {
			if d16.SpeedupPct < 25 {
				t.Errorf("%s: depth 16 only %.1f%% over depth 1, want >= 25%%",
					s.Label, d16.SpeedupPct)
			}
		}
		if d16.ServerCycles >= d1.ServerCycles {
			t.Errorf("%s: depth 16 burned %d cycles, depth 1 %d — no amortization",
				s.Label, d16.ServerCycles, d1.ServerCycles)
			continue
		}
		delta := d1.ServerCycles - d16.ServerCycles
		var crossSave uint64
		for _, c := range []clock.Component{clock.CompGate, clock.CompVMM, clock.CompNet, clock.CompRest} {
			if before, after := d1.ByComponent[c], d16.ByComponent[c]; before > after {
				crossSave += before - after
			}
		}
		if crossSave < delta {
			t.Errorf("%s: saved %d cycles but only %d attributed to crossing components",
				s.Label, delta, crossSave)
		}
		// The batched paths may spend a little extra elsewhere (vectored
		// syscall bookkeeping, extra buffers) — but only a little.
		if overhead := crossSave - delta; overhead > delta/20 {
			t.Errorf("%s: batching added %d cycles outside crossing components (delta %d)",
				s.Label, overhead, delta)
		}
		t.Logf("%s: depth16 +%.1f%% (%d -> %d cycles, %d crossing-cycles saved)",
			s.Label, d16.SpeedupPct, d1.ServerCycles, d16.ServerCycles, crossSave)
	}
}

// BenchmarkAblationDelayedAck measures RFC 1122 delayed
// acknowledgements on the iperf receive path.
func BenchmarkAblationDelayedAck(b *testing.B) {
	for _, delayed := range []bool{false, true} {
		name := "ack-per-segment"
		if delayed {
			name = "delayed-ack"
		}
		b.Run(name, func(b *testing.B) {
			cfg := build.Config{}
			cfg.Net.DelayedAck = delayed
			var mbps float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunIperf(cfg, 512<<10, 8<<10)
				if err != nil {
					b.Fatal(err)
				}
				mbps = r.Gbps * 1000
			}
			b.ReportMetric(mbps, "sim-Mbps")
		})
	}
}

// BenchmarkAblationSocketMode compares direct socket calls with the
// tcpip-thread (netconn) handoff.
func BenchmarkAblationSocketMode(b *testing.B) {
	for _, mode := range []flexnet.SocketMode{flexnet.DirectMode, flexnet.TCPIPThreadMode} {
		b.Run(mode.String(), func(b *testing.B) {
			var kreq float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunRedisWithMode(build.Config{}, harness.OpGET, 50, 96, mode)
				if err != nil {
					b.Fatal(err)
				}
				kreq = r.KReqPerSec
			}
			b.ReportMetric(kreq, "sim-kreq/s")
		})
	}
}

// BenchmarkExplore measures full design-space enumeration of the
// default image, serial vs. parallel. Every variant runs the same
// memoized pipeline; only the worker-pool size differs, and the
// outputs are byte-identical (pinned by the explore determinism
// test). cache-hit-% reports how much coloring work the
// conflict-fingerprint cache absorbed.
func BenchmarkExplore(b *testing.B) {
	libs := spec.DefaultImage()
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers4", 4},
		{"gomaxprocs", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var stats explore.Stats
			for i := 0; i < b.N; i++ {
				cands, st, err := explore.ExploreOpts(libs, gate.MPKShared,
					explore.DefaultWorkload(), explore.Options{Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(cands) != 16 {
					b.Fatal("bad candidate count")
				}
				stats = st
			}
			b.ReportMetric(100*float64(stats.CacheHits)/float64(stats.Combinations), "cache-hit-%")
			b.ReportMetric(float64(stats.Workers), "workers")
		})
	}
}

// --- Overload: goodput under saturation, shed vs oblivious -----------

// BenchmarkOverload runs the full goodput-vs-offered-load matrix and
// reports the headline simulated metrics the CI gate pins: goodput
// with shedding at the highest offered load on the MPK-switched image
// (iperf and redis), the oblivious baseline it must beat, and the
// breaker's half-open re-close count.
func BenchmarkOverload(b *testing.B) {
	var res *harness.OverloadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Overload()
		if err != nil {
			b.Fatal(err)
		}
	}
	row := func(workload, image, mode string, load int) harness.OverloadRow {
		for _, r := range res.Rows {
			if r.Workload == workload && r.Image == image && r.Mode == mode && r.Load == load {
				return r
			}
		}
		b.Fatalf("missing row %s/%s/%s/%d", workload, image, mode, load)
		return harness.OverloadRow{}
	}
	b.ReportMetric(row("iperf-tcp", "mpk-switched", "shed", 8).Goodput, "sim-shed-Mbps")
	b.ReportMetric(row("iperf-tcp", "mpk-switched", "noshed", 8).Goodput, "sim-noshed-Mbps")
	b.ReportMetric(row("redis-get", "mpk-switched", "shed", 32).Goodput, "sim-shed-kreqs")
	b.ReportMetric(float64(res.Breaker.Closes), "breaker-closes")
}

// BenchmarkChaosnet measures goodput retention under adversarial frame
// loss: the MPK-shared image's lossless goodput, what fraction of it
// survives 1% per-direction loss, and the repair-traffic volume. The
// fault schedule is a seeded PRNG on the virtual clock, so every
// metric is exactly reproducible.
func BenchmarkChaosnet(b *testing.B) {
	var res *harness.ChaosnetResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Chaosnet(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	series := func(label string) harness.ChaosnetSeries {
		for _, s := range res.Series {
			if s.Label == label {
				return s
			}
		}
		b.Fatalf("missing series %q", label)
		return harness.ChaosnetSeries{}
	}
	point := func(s harness.ChaosnetSeries, loss float64) harness.ChaosnetPoint {
		for _, p := range s.Points {
			if p.Loss == loss {
				return p
			}
		}
		b.Fatalf("missing loss point %v in %q", loss, s.Label)
		return harness.ChaosnetPoint{}
	}
	mpk := series("MPK-Sha. NW-only")
	b.ReportMetric(point(mpk, 0).Gbps*1000, "sim-lossless-Mbps")
	b.ReportMetric(point(mpk, 0.01).RetentionPct, "sim-loss1-retention-%")
	b.ReportMetric(float64(point(mpk, 0.01).Retransmits), "sim-loss1-rtx")
	b.ReportMetric(point(mpk, 0.05).RetentionPct, "sim-loss5-retention-%")
}

// BenchmarkParetoFront measures the skyline filter over a design
// space grown well past the default image (every subset of one
// candidate list replicated with perturbed scores), where the old
// O(n²) dominance filter used to live.
func BenchmarkParetoFront(b *testing.B) {
	base, err := flexos.Explore(spec.DefaultImage(), flexos.MPKShared)
	if err != nil {
		b.Fatal(err)
	}
	// Tile the 16 real candidates out to a few thousand points with
	// small deterministic score offsets, keeping a realistic mix of
	// dominated points, ties and duplicates.
	cands := make([]*explore.Candidate, 0, 4096)
	for i := 0; len(cands) < 4096; i++ {
		src := base[i%len(base)]
		c := *src
		c.EstCycles += float64(i%97) * 3.0
		c.Security += float64(i%13) * 0.05
		cands = append(cands, &c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front := explore.ParetoFront(cands)
		if len(front) == 0 {
			b.Fatal("empty front")
		}
	}
}

// BenchmarkAutotune measures the closed exploration loop: every
// backend's static Pareto front booted and measured under the real
// workload, the model validated point by point, and a calibration
// fitted back. All metrics are virtual-time, so they are exactly
// reproducible; the gate pins the sweep's shape (points, boots, memo
// hits) and the post-calibration model quality.
func BenchmarkAutotune(b *testing.B) {
	var res *harness.AutotuneResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Autotune(harness.DefaultAutotuneOpts(false))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Points)), "sim-points")
	b.ReportMetric(float64(res.UniqueRuns), "sim-boots")
	b.ReportMetric(float64(res.MemoHits), "sim-memo-hits")
	b.ReportMetric(float64(res.FrontSize), "sim-front-size")
	b.ReportMetric(res.PostMAEPct, "sim-post-mae-%")
	cheapest := res.Points[0]
	for _, p := range res.Points {
		if p.Measured < cheapest.Measured {
			cheapest = p
		}
	}
	b.ReportMetric(cheapest.Measured, "sim-best-cycles-op")
}
