package flexos_test

import (
	"testing"

	"flexos"
)

// TestFacadeWorkflow walks the README's typical workflow end to end
// through the public API only.
func TestFacadeWorkflow(t *testing.T) {
	// 1. Parse metadata.
	libs := flexos.DefaultImage()
	if len(libs) != 6 {
		t.Fatalf("DefaultImage: %d libraries", len(libs))
	}

	// 2. Pairwise compatibility: verified scheduler vs wildcard libc.
	var sched, libc *flexos.Library
	for _, l := range libs {
		switch l.Name {
		case "sched":
			sched = l
		case "libc":
			libc = l
		}
	}
	if flexos.Compatible(sched, libc) {
		t.Fatal("sched and wildcard libc must conflict")
	}
	if len(flexos.ExplainConflicts(sched, libc)) == 0 {
		t.Fatal("no conflict explanation")
	}
	hardened, err := flexos.Harden(libc)
	if err != nil {
		t.Fatal(err)
	}
	if !flexos.Compatible(sched, hardened) {
		t.Fatal("hardened libc should cohabit with sched")
	}

	// 3. Compartmentalization by coloring.
	plan, err := flexos.PlanCompartments(libs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCompartments() != 2 {
		t.Fatalf("plan uses %d compartments, want 2", plan.NumCompartments())
	}

	// 4. Design-space exploration.
	cands, err := flexos.Explore(libs, flexos.MPKShared)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 16 {
		t.Fatalf("explore found %d candidates", len(cands))
	}
	if best := flexos.MaxSecurityWithinBudget(cands, 5.0); best == nil {
		t.Fatal("no candidate within budget")
	}
	if front := flexos.ParetoFront(cands); len(front) == 0 {
		t.Fatal("empty Pareto front")
	}

	// 5. Build and run a measurement.
	res, err := flexos.RunIperf(flexos.Config{
		Compartments: flexos.NWOnly(),
		Backend:      flexos.MPKShared,
		Alloc:        flexos.AllocPerCompartment,
	}, 128<<10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gbps <= 0 || res.Crossings == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFacadeBackendParsing(t *testing.T) {
	b, err := flexos.ParseBackend("hodor")
	if err != nil || b != flexos.MPKSwitched {
		t.Fatalf("ParseBackend = %v, %v", b, err)
	}
}

func TestFacadeRedis(t *testing.T) {
	res, err := flexos.RunRedis(flexos.Config{}, flexos.OpGET, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.KReqPerSec <= 0 {
		t.Fatalf("throughput = %v", res.KReqPerSec)
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	s, err := flexos.ParseSpec("[Memory access] Read(Own); Write(Own)\n[Call] -")
	if err != nil {
		t.Fatal(err)
	}
	if s.Writes.All {
		t.Fatal("parse wrong")
	}
}
